//! The bitmap two-tuple encoding `(bitmap, condensed values)`.
//!
//! This is the paper's core sparse format (Fig. 2b): the bitmap carries the
//! positions of non-zeros, and the value array stores only the non-zeros in
//! *condensed* order — column-major for an outer-product A operand (each
//! column's non-zeros pushed to the top, Fig. 4c) and row-major for a B
//! operand (each row's non-zeros pushed to the left).

use dsstc_tensor::Matrix;

use crate::bit_matrix::BitMatrix;
use crate::StorageFootprint;

/// Which axis the condensed value vectors run along.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VectorLayout {
    /// Values stored column by column — the A operand of an outer product
    /// (each outer-product step consumes one column of A).
    ColumnMajor,
    /// Values stored row by row — the B operand of an outer product.
    RowMajor,
}

/// A sparse matrix in bitmap encoding.
///
/// # Example
/// ```
/// use dsstc_tensor::Matrix;
/// use dsstc_formats::{BitmapMatrix, VectorLayout};
///
/// let dense = Matrix::from_rows(&[&[0.0, 2.0], &[3.0, 0.0]]);
/// let a = BitmapMatrix::encode(&dense, VectorLayout::ColumnMajor);
/// // Column 0 holds [3.0], column 1 holds [2.0].
/// assert_eq!(a.vector_values(0), &[3.0]);
/// assert_eq!(a.vector_values(1), &[2.0]);
/// assert_eq!(a.decode(), dense);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct BitmapMatrix {
    rows: usize,
    cols: usize,
    layout: VectorLayout,
    bitmap: BitMatrix,
    /// Non-zero values in condensed layout order.
    values: Vec<f32>,
    /// Start offset of each condensed vector in `values`; length is
    /// `cols + 1` for column-major and `rows + 1` for row-major.
    offsets: Vec<usize>,
}

impl BitmapMatrix {
    /// Encodes a dense matrix.
    pub fn encode(dense: &Matrix, layout: VectorLayout) -> Self {
        let bitmap = BitMatrix::from_matrix(dense);
        let (rows, cols) = (dense.rows(), dense.cols());
        let vector_count = match layout {
            VectorLayout::ColumnMajor => cols,
            VectorLayout::RowMajor => rows,
        };
        let mut values = Vec::with_capacity(dense.nnz());
        let mut offsets = Vec::with_capacity(vector_count + 1);
        offsets.push(0);
        for v in 0..vector_count {
            match layout {
                VectorLayout::ColumnMajor => {
                    for r in 0..rows {
                        let x = dense[(r, v)];
                        if x != 0.0 {
                            values.push(x);
                        }
                    }
                }
                VectorLayout::RowMajor => {
                    for c in 0..cols {
                        let x = dense[(v, c)];
                        if x != 0.0 {
                            values.push(x);
                        }
                    }
                }
            }
            offsets.push(values.len());
        }
        BitmapMatrix { rows, cols, layout, bitmap, values, offsets }
    }

    /// Number of rows of the logical (dense) matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the logical (dense) matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The condensed-vector layout.
    pub fn layout(&self) -> VectorLayout {
        self.layout
    }

    /// The position bitmap.
    pub fn bitmap(&self) -> &BitMatrix {
        &self.bitmap
    }

    /// Total number of non-zero values.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of zero elements.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// Number of condensed vectors (columns for column-major, rows for
    /// row-major).
    pub fn vector_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The condensed non-zero values of vector `v` (column `v` or row `v`
    /// depending on layout).
    ///
    /// # Panics
    /// Panics if `v >= vector_count()`.
    pub fn vector_values(&self, v: usize) -> &[f32] {
        assert!(v < self.vector_count(), "vector index out of bounds");
        &self.values[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Number of non-zeros in vector `v` — what a `POPC` over that vector's
    /// bitmap returns.
    pub fn vector_nnz(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The bit pattern of vector `v` as booleans (length `rows` for
    /// column-major, `cols` for row-major).
    pub fn vector_bits(&self, v: usize) -> Vec<bool> {
        assert!(v < self.vector_count(), "vector index out of bounds");
        match self.layout {
            VectorLayout::ColumnMajor => (0..self.rows).map(|r| self.bitmap.get(r, v)).collect(),
            VectorLayout::RowMajor => (0..self.cols).map(|c| self.bitmap.get(v, c)).collect(),
        }
    }

    /// The dense positions (row indices for column-major, column indices for
    /// row-major) of vector `v`'s non-zeros, in the same order as
    /// [`Self::vector_values`].
    pub fn vector_positions(&self, v: usize) -> Vec<usize> {
        assert!(v < self.vector_count(), "vector index out of bounds");
        match self.layout {
            VectorLayout::ColumnMajor => self.bitmap.col_set_bits(v),
            VectorLayout::RowMajor => self.bitmap.row_set_bits(v),
        }
    }

    /// All non-zero values in condensed order.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Reads the logical element `(row, col)` (zero when the bit is clear).
    ///
    /// # Panics
    /// Panics when out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        if !self.bitmap.get(row, col) {
            return 0.0;
        }
        match self.layout {
            VectorLayout::ColumnMajor => {
                // Rank of `row` within column `col`.
                let rank = (0..row).filter(|&r| self.bitmap.get(r, col)).count();
                self.values[self.offsets[col] + rank]
            }
            VectorLayout::RowMajor => {
                let rank = self.bitmap.rank(row, col);
                self.values[self.offsets[row] + rank]
            }
        }
    }

    /// Reconstructs the dense matrix.
    pub fn decode(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for v in 0..self.vector_count() {
            let positions = self.vector_positions(v);
            let values = self.vector_values(v);
            for (&p, &x) in positions.iter().zip(values) {
                match self.layout {
                    VectorLayout::ColumnMajor => m[(p, v)] = x,
                    VectorLayout::RowMajor => m[(v, p)] = x,
                }
            }
        }
        m
    }

    /// Storage footprint: 2 bytes per FP16 value plus the packed bitmap.
    pub fn storage(&self) -> StorageFootprint {
        StorageFootprint {
            value_bytes: self.nnz() as u64 * 2,
            metadata_bytes: self.bitmap.storage_bytes(),
        }
    }

    /// Rebuilds an encoding from a bitmap and the condensed values (the
    /// serialiser's constructor). The per-vector offsets are recomputed from
    /// the bitmap; fails if the value count disagrees with the bitmap's
    /// population count.
    pub(crate) fn from_parts(
        layout: VectorLayout,
        bitmap: BitMatrix,
        values: Vec<f32>,
    ) -> Result<Self, &'static str> {
        if bitmap.count_ones() != values.len() {
            return Err("condensed value count does not match the bitmap population");
        }
        let (rows, cols) = (bitmap.rows(), bitmap.cols());
        let vector_count = match layout {
            VectorLayout::ColumnMajor => cols,
            VectorLayout::RowMajor => rows,
        };
        let mut offsets = Vec::with_capacity(vector_count + 1);
        offsets.push(0);
        let mut total = 0usize;
        for v in 0..vector_count {
            total += match layout {
                VectorLayout::ColumnMajor => bitmap.col_count_ones(v),
                VectorLayout::RowMajor => bitmap.row_count_ones(v),
            };
            offsets.push(total);
        }
        Ok(BitmapMatrix { rows, cols, layout, bitmap, values, offsets })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsstc_tensor::SparsityPattern;

    fn paper_matrix_a() -> Matrix {
        // The 6x6 sparse matrix A from paper Fig. 2b (values 1..9, letters
        // replaced by numbers): non-zeros at the positions of the bitmap.
        Matrix::from_rows(&[
            &[0.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            &[0.0, 2.0, 0.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 3.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 4.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 5.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 6.0, 0.0, 0.0],
        ])
    }

    #[test]
    fn encode_decode_roundtrip_column_major() {
        let dense = Matrix::random_sparse(37, 53, 0.8, SparsityPattern::Uniform, 11);
        let enc = BitmapMatrix::encode(&dense, VectorLayout::ColumnMajor);
        assert_eq!(enc.decode(), dense);
        assert_eq!(enc.nnz(), dense.nnz());
    }

    #[test]
    fn encode_decode_roundtrip_row_major() {
        let dense = Matrix::random_sparse(53, 37, 0.9, SparsityPattern::Uniform, 12);
        let enc = BitmapMatrix::encode(&dense, VectorLayout::RowMajor);
        assert_eq!(enc.decode(), dense);
    }

    #[test]
    fn column_major_vectors_are_condensed_columns() {
        let a = paper_matrix_a();
        let enc = BitmapMatrix::encode(&a, VectorLayout::ColumnMajor);
        assert_eq!(enc.vector_count(), 6);
        assert_eq!(enc.vector_values(1), &[1.0, 2.0]);
        assert_eq!(enc.vector_values(3), &[3.0, 4.0, 5.0, 6.0]);
        assert!(enc.vector_values(0).is_empty());
        assert_eq!(enc.vector_nnz(3), 4);
        assert_eq!(enc.vector_positions(3), vec![2, 3, 4, 5]);
    }

    #[test]
    fn row_major_vectors_are_condensed_rows() {
        let b = Matrix::from_rows(&[
            &[0.0, 7.0, 8.0, 0.0],
            &[0.0, 0.0, 0.0, 0.0],
            &[9.0, 0.0, 0.0, 1.5],
        ]);
        let enc = BitmapMatrix::encode(&b, VectorLayout::RowMajor);
        assert_eq!(enc.vector_values(0), &[7.0, 8.0]);
        assert!(enc.vector_values(1).is_empty());
        assert_eq!(enc.vector_values(2), &[9.0, 1.5]);
        assert_eq!(enc.vector_positions(2), vec![0, 3]);
        assert_eq!(enc.vector_bits(0), vec![false, true, true, false]);
    }

    #[test]
    fn get_matches_dense_elementwise() {
        let dense = Matrix::random_sparse(20, 24, 0.6, SparsityPattern::Uniform, 4);
        for layout in [VectorLayout::ColumnMajor, VectorLayout::RowMajor] {
            let enc = BitmapMatrix::encode(&dense, layout);
            for r in 0..dense.rows() {
                for c in 0..dense.cols() {
                    assert_eq!(enc.get(r, c), dense[(r, c)], "({r},{c}) layout {layout:?}");
                }
            }
        }
    }

    #[test]
    fn sparsity_reported() {
        let dense = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        let enc = BitmapMatrix::encode(&dense, VectorLayout::ColumnMajor);
        assert!((enc.sparsity() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn fully_dense_and_fully_empty() {
        let dense = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let enc = BitmapMatrix::encode(&dense, VectorLayout::ColumnMajor);
        assert_eq!(enc.nnz(), 4);
        assert_eq!(enc.vector_values(0), &[1.0, 3.0]);

        let empty = Matrix::zeros(4, 4);
        let enc = BitmapMatrix::encode(&empty, VectorLayout::RowMajor);
        assert_eq!(enc.nnz(), 0);
        assert_eq!(enc.decode(), empty);
    }

    #[test]
    fn storage_footprint_scales_with_nnz() {
        let dense = Matrix::random_sparse(64, 64, 0.9, SparsityPattern::Uniform, 8);
        let enc = BitmapMatrix::encode(&dense, VectorLayout::ColumnMajor);
        let s = enc.storage();
        assert_eq!(s.value_bytes, enc.nnz() as u64 * 2);
        assert_eq!(s.metadata_bytes, 64 * 8); // one u64 word per row
                                              // Bitmap metadata stays fixed as sparsity changes; CSR's would not.
        let denser = Matrix::random_sparse(64, 64, 0.1, SparsityPattern::Uniform, 8);
        let enc2 = BitmapMatrix::encode(&denser, VectorLayout::ColumnMajor);
        assert_eq!(enc2.storage().metadata_bytes, s.metadata_bytes);
    }
}
