//! CHW feature maps (single image) used by the convolution kernels.
//!
//! The paper's convolution pipeline operates on one input image at a time
//! (batch size 1 inference), so a 3-D `C x H x W` container is sufficient;
//! batching is handled by looping at the layer level.

use crate::matrix::Matrix;
use crate::random::{RandomMatrixBuilder, SparsityPattern};
use crate::shape::ConvShape;

/// A `C x H x W` feature map stored channel-major (each channel is a dense
/// row-major `H x W` plane).
///
/// # Example
/// ```
/// use dsstc_tensor::FeatureMap;
/// let fm = FeatureMap::zeros(3, 8, 8);
/// assert_eq!(fm.channels(), 3);
/// assert_eq!(fm.get(2, 7, 7), 0.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FeatureMap {
    channels: usize,
    height: usize,
    width: usize,
    data: Vec<f32>,
}

impl FeatureMap {
    /// Creates a zero-filled feature map.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn zeros(channels: usize, height: usize, width: usize) -> Self {
        assert!(channels > 0 && height > 0 && width > 0, "dimensions must be non-zero");
        FeatureMap { channels, height, width, data: vec![0.0; channels * height * width] }
    }

    /// Builds a feature map from per-channel matrices.
    ///
    /// # Panics
    /// Panics if the channel list is empty or shapes disagree.
    pub fn from_channels(planes: &[Matrix]) -> Self {
        assert!(!planes.is_empty(), "at least one channel required");
        let (h, w) = (planes[0].rows(), planes[0].cols());
        let mut fm = FeatureMap::zeros(planes.len(), h, w);
        for (c, plane) in planes.iter().enumerate() {
            assert_eq!((plane.rows(), plane.cols()), (h, w), "channel shapes must agree");
            for r in 0..h {
                for col in 0..w {
                    fm.set(c, r, col, plane[(r, col)]);
                }
            }
        }
        fm
    }

    /// Random sparse feature map matching a convolution's input shape.
    pub fn random_sparse(shape: &ConvShape, sparsity: f64, seed: u64) -> Self {
        let mut planes = Vec::with_capacity(shape.c);
        for c in 0..shape.c {
            planes.push(
                RandomMatrixBuilder::new(shape.h, shape.w)
                    .sparsity(sparsity)
                    .pattern(SparsityPattern::Uniform)
                    .seed(seed.wrapping_add(c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .build(),
            );
        }
        FeatureMap::from_channels(&planes)
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Height of each channel plane.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Width of each channel plane.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Reads element `(c, y, x)`.
    ///
    /// # Panics
    /// Panics when out of bounds.
    pub fn get(&self, c: usize, y: usize, x: usize) -> f32 {
        assert!(c < self.channels && y < self.height && x < self.width, "index out of bounds");
        self.data[(c * self.height + y) * self.width + x]
    }

    /// Reads element `(c, y, x)` treating out-of-bounds coordinates (from
    /// padding) as zero. `y`/`x` are signed for this reason.
    pub fn get_padded(&self, c: usize, y: isize, x: isize) -> f32 {
        if c >= self.channels
            || y < 0
            || x < 0
            || y as usize >= self.height
            || x as usize >= self.width
        {
            0.0
        } else {
            self.data[(c * self.height + y as usize) * self.width + x as usize]
        }
    }

    /// Writes element `(c, y, x)`.
    ///
    /// # Panics
    /// Panics when out of bounds.
    pub fn set(&mut self, c: usize, y: usize, x: usize, value: f32) {
        assert!(c < self.channels && y < self.height && x < self.width, "index out of bounds");
        self.data[(c * self.height + y) * self.width + x] = value;
    }

    /// Returns channel `c` as a dense matrix.
    ///
    /// # Panics
    /// Panics if `c >= self.channels()`.
    pub fn channel(&self, c: usize) -> Matrix {
        assert!(c < self.channels, "channel out of bounds");
        let start = c * self.height * self.width;
        Matrix::from_vec(
            self.height,
            self.width,
            self.data[start..start + self.height * self.width].to_vec(),
        )
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the feature map contains no elements (never true — dimensions
    /// are validated non-zero — but provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of non-zero elements.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&x| x != 0.0).count()
    }

    /// Fraction of zero elements.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.nnz() as f64 / self.len() as f64
    }

    /// Applies ReLU in place and returns the resulting sparsity.
    pub fn relu_in_place(&mut self) -> f64 {
        for v in &mut self.data {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        self.sparsity()
    }

    /// Direct (reference) convolution of this feature map with `weights`,
    /// where `weights[n]` holds output channel `n` as a `C x K x K` feature
    /// map. Returns the output feature map of shape `N x out_h x out_w`.
    ///
    /// # Panics
    /// Panics if the weight shapes do not match `shape`, or if `shape`'s
    /// input dimensions do not match this feature map.
    pub fn conv2d_reference(&self, weights: &[FeatureMap], shape: &ConvShape) -> FeatureMap {
        assert_eq!(self.channels, shape.c, "input channel mismatch");
        assert_eq!(self.height, shape.h, "input height mismatch");
        assert_eq!(self.width, shape.w, "input width mismatch");
        assert_eq!(weights.len(), shape.n, "output channel mismatch");
        for w in weights {
            assert_eq!(
                (w.channels, w.height, w.width),
                (shape.c, shape.k, shape.k),
                "weight shape mismatch"
            );
        }
        let (oh, ow) = (shape.out_h(), shape.out_w());
        let mut out = FeatureMap::zeros(shape.n, oh, ow);
        for (n, weight) in weights.iter().enumerate() {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for c in 0..shape.c {
                        for ky in 0..shape.k {
                            for kx in 0..shape.k {
                                let iy = (oy * shape.stride + ky) as isize - shape.padding as isize;
                                let ix = (ox * shape.stride + kx) as isize - shape.padding as isize;
                                acc += self.get_padded(c, iy, ix) * weight.get(c, ky, kx);
                            }
                        }
                    }
                    out.set(n, oy, ox, acc);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_access() {
        let mut fm = FeatureMap::zeros(2, 3, 4);
        assert_eq!(fm.len(), 24);
        assert!(!fm.is_empty());
        fm.set(1, 2, 3, 7.0);
        assert_eq!(fm.get(1, 2, 3), 7.0);
        assert_eq!(fm.nnz(), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let fm = FeatureMap::zeros(1, 2, 2);
        let _ = fm.get(0, 2, 0);
    }

    #[test]
    fn padded_access_returns_zero_outside() {
        let mut fm = FeatureMap::zeros(1, 2, 2);
        fm.set(0, 0, 0, 3.0);
        assert_eq!(fm.get_padded(0, -1, 0), 0.0);
        assert_eq!(fm.get_padded(0, 0, 5), 0.0);
        assert_eq!(fm.get_padded(0, 0, 0), 3.0);
    }

    #[test]
    fn channel_roundtrip() {
        let planes = vec![
            Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]),
            Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]),
        ];
        let fm = FeatureMap::from_channels(&planes);
        assert_eq!(fm.channel(0), planes[0]);
        assert_eq!(fm.channel(1), planes[1]);
    }

    #[test]
    fn relu_generates_sparsity() {
        let planes = vec![Matrix::from_rows(&[&[-1.0, 2.0], &[3.0, -4.0]])];
        let mut fm = FeatureMap::from_channels(&planes);
        let s = fm.relu_in_place();
        assert!((s - 0.5).abs() < 1e-12);
        assert_eq!(fm.get(0, 0, 0), 0.0);
        assert_eq!(fm.get(0, 1, 0), 3.0);
    }

    #[test]
    fn random_sparse_matches_conv_shape() {
        let shape = ConvShape::square(8, 4, 2, 3, 1, 1);
        let fm = FeatureMap::random_sparse(&shape, 0.6, 42);
        assert_eq!(fm.channels(), 4);
        assert_eq!(fm.height(), 8);
        assert!((fm.sparsity() - 0.6).abs() < 0.15);
    }

    #[test]
    fn conv2d_identity_kernel_copies_input() {
        // 1x1 kernel with weight 1.0 reproduces the input.
        let shape = ConvShape::square(4, 1, 1, 1, 1, 0);
        let input = FeatureMap::random_sparse(&shape, 0.3, 1);
        let mut w = FeatureMap::zeros(1, 1, 1);
        w.set(0, 0, 0, 1.0);
        let out = input.conv2d_reference(&[w], &shape);
        assert_eq!(out, input);
    }

    #[test]
    fn conv2d_known_sum_kernel() {
        // All-ones 2x2 kernel computes sliding-window sums.
        let shape = ConvShape::square(3, 1, 1, 2, 1, 0);
        let mut input = FeatureMap::zeros(1, 3, 3);
        let mut v = 1.0;
        for y in 0..3 {
            for x in 0..3 {
                input.set(0, y, x, v);
                v += 1.0;
            }
        }
        let mut w = FeatureMap::zeros(1, 2, 2);
        for y in 0..2 {
            for x in 0..2 {
                w.set(0, y, x, 1.0);
            }
        }
        let out = input.conv2d_reference(&[w], &shape);
        // Windows: [1,2,4,5]=12, [2,3,5,6]=16, [4,5,7,8]=24, [5,6,8,9]=28.
        assert_eq!(out.get(0, 0, 0), 12.0);
        assert_eq!(out.get(0, 0, 1), 16.0);
        assert_eq!(out.get(0, 1, 0), 24.0);
        assert_eq!(out.get(0, 1, 1), 28.0);
    }

    #[test]
    fn conv2d_with_padding_preserves_spatial_size() {
        let shape = ConvShape::square(5, 2, 3, 3, 1, 1);
        let input = FeatureMap::random_sparse(&shape, 0.5, 3);
        let weights: Vec<FeatureMap> = (0..3)
            .map(|n| {
                let s = ConvShape::square(3, 2, 1, 1, 1, 0);
                let _ = s;
                let mut w = FeatureMap::zeros(2, 3, 3);
                w.set(0, 1, 1, n as f32 + 1.0);
                w
            })
            .collect();
        let out = input.conv2d_reference(&weights, &shape);
        assert_eq!(out.channels(), 3);
        assert_eq!(out.height(), 5);
        assert_eq!(out.width(), 5);
        // Centre-tap kernels scale the first input channel.
        assert_eq!(out.get(1, 2, 2), 2.0 * input.get(0, 2, 2));
    }
}
