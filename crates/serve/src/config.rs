//! Serving-runtime configuration.

use std::time::Duration;

use dsstc_sim::GpuConfig;

/// Configuration of an [`crate::InferenceServer`].
///
/// The defaults (two workers, batches of up to eight requests flushed after
/// two milliseconds, a 64-wide proxy feature dimension on the paper's V100
/// configuration) are sized so the serving smoke tests and the demo run in
/// seconds; a throughput deployment raises `workers` and `max_batch`.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Number of OS worker threads executing batches.
    pub workers: usize,
    /// Largest number of requests merged into one batch.
    pub max_batch: usize,
    /// How long the oldest queued request may wait before its batch is
    /// flushed even if it is not full.
    pub max_queue_wait: Duration,
    /// Feature dimension of the functional proxy GEMMs each request flows
    /// through (the modelled latency always uses the network's *real*
    /// shapes; see [`crate::ModelRepository`]).
    pub proxy_dim: usize,
    /// GPU configuration for the timing model and kernel tiling.
    pub gpu: GpuConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            max_batch: 8,
            max_queue_wait: Duration::from_millis(2),
            proxy_dim: 64,
            gpu: GpuConfig::v100(),
        }
    }
}

impl ServeConfig {
    /// Overrides the worker-thread count.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "at least one worker is required");
        self.workers = workers;
        self
    }

    /// Overrides the maximum batch size.
    ///
    /// # Panics
    /// Panics if `max_batch` is zero.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        assert!(max_batch > 0, "batches need at least one request");
        self.max_batch = max_batch;
        self
    }

    /// Overrides the queue-flush deadline.
    pub fn with_max_queue_wait(mut self, wait: Duration) -> Self {
        self.max_queue_wait = wait;
        self
    }

    /// Overrides the proxy feature dimension.
    ///
    /// # Panics
    /// Panics if `proxy_dim` is zero.
    pub fn with_proxy_dim(mut self, proxy_dim: usize) -> Self {
        assert!(proxy_dim > 0, "proxy dimension must be non-zero");
        self.proxy_dim = proxy_dim;
        self
    }

    /// Overrides the GPU configuration.
    pub fn with_gpu(mut self, gpu: GpuConfig) -> Self {
        self.gpu = gpu;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServeConfig::default();
        assert!(c.workers >= 2);
        assert!(c.max_batch > 1);
        assert!(c.proxy_dim % 32 == 0);
    }

    #[test]
    fn builders_override_fields() {
        let c = ServeConfig::default()
            .with_workers(5)
            .with_max_batch(3)
            .with_max_queue_wait(Duration::from_millis(7))
            .with_proxy_dim(96);
        assert_eq!(c.workers, 5);
        assert_eq!(c.max_batch, 3);
        assert_eq!(c.max_queue_wait, Duration::from_millis(7));
        assert_eq!(c.proxy_dim, 96);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = ServeConfig::default().with_workers(0);
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn zero_batch_panics() {
        let _ = ServeConfig::default().with_max_batch(0);
    }
}
