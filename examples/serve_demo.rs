//! Serving demo: mixed ResNet-50 / BERT traffic through the batched,
//! multi-threaded inference server with a pre-encoded model repository.
//!
//! 120 requests are submitted in one burst, dynamically batched per model,
//! executed by a pool of four worker threads on the dual-side SpGEMM kernel,
//! and answered with output features plus the modelled V100 latency of the
//! real network at each batch's size. The run ends with the server's
//! metrics: throughput, queue/execute percentiles, the batch-size histogram
//! and the encode-cache hit rate (one encode per model, everything after is
//! a hit).
//!
//! Run with `cargo run --release -p dsstc --example serve_demo`.

use std::collections::HashSet;
use std::time::Duration;

use dsstc::serve::{InferRequest, InferenceServer, ModelId, ServeConfig};
use dsstc_tensor::{Matrix, SparsityPattern};

fn main() {
    const REQUESTS: u64 = 120;
    let config = ServeConfig::default()
        .with_workers(4)
        .with_max_batch(8)
        .with_max_queue_wait(Duration::from_millis(2))
        .with_proxy_dim(64);
    let mut server = InferenceServer::start(config);
    println!(
        "== dsstc-serve demo: {REQUESTS} mixed ResNet-50/BERT requests, {} workers, batches of up to {} ==\n",
        server.config().workers,
        server.config().max_batch
    );

    // Deploy-time warm-up: encode both models' weights and pre-price the
    // batch buckets once, before traffic arrives.
    for model in [ModelId::ResNet50, ModelId::BertBase] {
        let encode_ms = server.warm_model(model, None);
        println!("warmed {model}: weights pruned + bitmap-encoded in {encode_ms:.1} ms");
    }
    println!();

    // One burst of mixed traffic: even ids are ResNet-50 images, odd ids are
    // BERT token windows. Submitting faster than the workers drain the queue
    // is what gives the scheduler something to batch.
    let pending: Vec<_> = (0..REQUESTS)
        .map(|i| {
            let model = if i % 2 == 0 { ModelId::ResNet50 } else { ModelId::BertBase };
            let features = Matrix::random_sparse(4, 64, 0.4, SparsityPattern::Uniform, i);
            server.submit(InferRequest::new(model, features)).expect("server accepts requests")
        })
        .collect();

    let mut ids = HashSet::new();
    let mut workers_seen = HashSet::new();
    let mut per_model: Vec<(ModelId, u64, f64)> = Vec::new();
    for p in pending {
        let response = p.wait().expect("every request is answered");
        assert!(ids.insert(response.id), "duplicate response id {}", response.id);
        workers_seen.insert(response.worker);
        match per_model.iter_mut().find(|(m, _, _)| *m == response.model) {
            Some((_, count, modelled)) => {
                *count += 1;
                *modelled += response.modelled_request_us;
            }
            None => per_model.push((response.model, 1, response.modelled_request_us)),
        }
    }
    assert_eq!(ids.len() as u64, REQUESTS, "every request answered exactly once");

    for (model, count, modelled) in &per_model {
        println!(
            "{model:<20} {count:>4} responses   mean modelled latency {:>9.1} us/request",
            modelled / *count as f64
        );
    }
    println!("worker threads that executed batches: {}\n", workers_seen.len());

    let stats = server.stats();
    println!("{}", stats.render());
    server.shutdown();

    // The properties this demo exists to demonstrate.
    assert!(workers_seen.len() >= 2, "expected >= 2 active workers");
    assert!(stats.mean_batch_size > 1.0, "expected dynamic batching to engage");
    assert!(stats.encode_hit_rate > 0.0, "expected encode-cache hits after the first batch");
    println!("ok: {REQUESTS} requests answered exactly once by {} workers, mean batch {:.2}, encode-cache hit rate {:.0}%",
        workers_seen.len(), stats.mean_batch_size, stats.encode_hit_rate * 100.0);
}
