//! ISA extensions of the dual-side sparse Tensor Core (paper Section V,
//! Fig. 14-17).
//!
//! The paper adds three things to the machine ISA: the dense outer-product
//! `OHMMA.8161`, the binary outer-product `BOHMMA.32321`, and the warp-level
//! `SpWMMA` API that compiles into one `BOHMMA`, two `POPC`s and eight
//! predicated `OHMMA`s per 32x32x1 set. This module models that compilation
//! step so kernels (and tests) can reason about exactly which machine
//! instructions a warp issues for given operand sparsity.

use crate::config::OtcConfig;

/// One machine-level instruction of the extended ISA.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MachineInstruction {
    /// Original inner-product `HMMA.884`: an 8x8x4 matrix-multiply step.
    Hmma884,
    /// Outer-product `OHMMA.8161`: an 8x16x1 step; `predicate` tells whether
    /// the predication bit enables (`true`) or skips (`false`) it.
    Ohmma8161 {
        /// Predication bit (`@p` in Fig. 17): `false` means skipped.
        predicate: bool,
    },
    /// Binary outer-product `BOHMMA.32321` on 1-bit operands.
    Bohmma32321,
    /// Population count over a 32-bit bitmap word.
    Popc,
    /// Global-memory load of a 128-byte sector.
    LoadGlobal,
    /// Shared-memory load.
    LoadShared,
    /// Global-memory store of a 128-byte sector.
    StoreGlobal,
}

impl MachineInstruction {
    /// Whether the instruction actually occupies an issue slot (skipped
    /// OHMMAs do not).
    pub fn issues(&self) -> bool {
        !matches!(self, MachineInstruction::Ohmma8161 { predicate: false })
    }

    /// SASS-like textual form, for debugging and the quickstart example.
    pub fn mnemonic(&self) -> String {
        match self {
            MachineInstruction::Hmma884 => "HMMA.884.F32.F32".to_string(),
            MachineInstruction::Ohmma8161 { predicate } => {
                let p = if *predicate { "@p1" } else { "@!p1(skip)" };
                format!("{p} HMMA.OHMMA.8161.F32.F32")
            }
            MachineInstruction::Bohmma32321 => "HMMA.BOHMMA.32321.B32.B32".to_string(),
            MachineInstruction::Popc => "POPC.B32".to_string(),
            MachineInstruction::LoadGlobal => "LDG.E.128".to_string(),
            MachineInstruction::LoadShared => "LDS.128".to_string(),
            MachineInstruction::StoreGlobal => "STG.E.128".to_string(),
        }
    }
}

impl std::fmt::Display for MachineInstruction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

/// Computes the per-OHMMA predicate mask for one 32x32x1 set, given the
/// population counts of the condensed A column and B row.
///
/// The warp-tile output is covered by a grid of
/// `warp_dim/tile_m x warp_dim/tile_n` OHMMA instructions (4 x 2 = 8 for the
/// paper's parameters), laid out row-group-major. An OHMMA is enabled iff
/// its row group still contains condensed A non-zeros **and** its column
/// group still contains condensed B non-zeros (paper Fig. 15).
pub fn predicate_mask(a_nnz: usize, b_nnz: usize, warp_dim: usize, otc: &OtcConfig) -> Vec<bool> {
    assert!(a_nnz <= warp_dim && b_nnz <= warp_dim, "nnz cannot exceed warp dimension");
    let row_groups = warp_dim.div_ceil(otc.tile_m);
    let col_groups = warp_dim.div_ceil(otc.tile_n);
    let active_rows = a_nnz.div_ceil(otc.tile_m);
    let active_cols = b_nnz.div_ceil(otc.tile_n);
    let mut mask = Vec::with_capacity(row_groups * col_groups);
    for r in 0..row_groups {
        for c in 0..col_groups {
            mask.push(r < active_rows && c < active_cols && a_nnz > 0 && b_nnz > 0);
        }
    }
    mask
}

/// The machine-instruction expansion of one SpWMMA set (a 32x32x1 outer
/// product step), as the hardware's decoder would emit it.
#[derive(Clone, Debug, PartialEq)]
pub struct SpWmmaSet {
    /// Population count of the A-column bitmap.
    pub a_nnz: usize,
    /// Population count of the B-row bitmap.
    pub b_nnz: usize,
    /// The emitted instruction stream (POPCs, BOHMMA, predicated OHMMAs).
    pub instructions: Vec<MachineInstruction>,
}

impl SpWmmaSet {
    /// Expands one set for the given operand population counts.
    pub fn expand(a_nnz: usize, b_nnz: usize, warp_dim: usize, otc: &OtcConfig) -> Self {
        let mut instructions = vec![MachineInstruction::Popc, MachineInstruction::Popc];
        if a_nnz > 0 && b_nnz > 0 {
            instructions.push(MachineInstruction::Bohmma32321);
            for predicate in predicate_mask(a_nnz, b_nnz, warp_dim, otc) {
                instructions.push(MachineInstruction::Ohmma8161 { predicate });
            }
        }
        SpWmmaSet { a_nnz, b_nnz, instructions }
    }

    /// Number of instructions that occupy issue slots.
    pub fn issued(&self) -> usize {
        self.instructions.iter().filter(|i| i.issues()).count()
    }

    /// Number of OHMMA instructions skipped by predication.
    pub fn skipped_ohmma(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| matches!(i, MachineInstruction::Ohmma8161 { predicate: false }))
            .count()
    }
}

/// A sequence of machine instructions issued by one warp, with counting
/// helpers. Kernels use this mainly for debugging and for the quickstart
/// example; the timing model consumes aggregate counts.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WarpProgram {
    instructions: Vec<MachineInstruction>,
}

impl WarpProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        WarpProgram::default()
    }

    /// Appends one instruction.
    pub fn push(&mut self, instruction: MachineInstruction) {
        self.instructions.push(instruction);
    }

    /// Appends a whole SpWMMA set expansion.
    pub fn push_set(&mut self, set: &SpWmmaSet) {
        self.instructions.extend_from_slice(&set.instructions);
    }

    /// All instructions, in issue order.
    pub fn instructions(&self) -> &[MachineInstruction] {
        &self.instructions
    }

    /// Number of instructions that occupy issue slots.
    pub fn issued(&self) -> usize {
        self.instructions.iter().filter(|i| i.issues()).count()
    }

    /// Number of instructions of an exact kind (for OHMMA, only enabled ones
    /// are counted).
    pub fn count(&self, kind: &MachineInstruction) -> usize {
        self.instructions.iter().filter(|i| *i == kind).count()
    }

    /// Renders the program as SASS-like text, one instruction per line.
    pub fn listing(&self) -> String {
        self.instructions.iter().map(|i| i.mnemonic()).collect::<Vec<_>>().join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn otc() -> OtcConfig {
        OtcConfig::paper()
    }

    #[test]
    fn dense_set_enables_all_eight_ohmmas() {
        let set = SpWmmaSet::expand(32, 32, 32, &otc());
        assert_eq!(set.instructions.len(), 2 + 1 + 8);
        assert_eq!(set.skipped_ohmma(), 0);
        assert_eq!(set.issued(), 11);
    }

    #[test]
    fn paper_fig15_set4_enables_three() {
        // POPC 20 on A, 12 on B: OHMMA 0/2/4 enabled in the paper's
        // numbering; in our row-group-major order that is 3 enabled of 8.
        let set = SpWmmaSet::expand(20, 12, 32, &otc());
        let enabled = set
            .instructions
            .iter()
            .filter(|i| matches!(i, MachineInstruction::Ohmma8161 { predicate: true }))
            .count();
        assert_eq!(enabled, 3);
        assert_eq!(set.skipped_ohmma(), 5);
    }

    #[test]
    fn empty_operand_emits_only_popcs() {
        let set = SpWmmaSet::expand(0, 32, 32, &otc());
        assert_eq!(set.instructions, vec![MachineInstruction::Popc, MachineInstruction::Popc]);
        assert_eq!(set.issued(), 2);
    }

    #[test]
    fn predicate_mask_shape_and_ordering() {
        let mask = predicate_mask(9, 17, 32, &otc());
        assert_eq!(mask.len(), 8);
        // 9 A-non-zeros -> 2 row groups active; 17 B-non-zeros -> 2 column
        // groups active; mask is row-group-major.
        assert_eq!(mask, vec![true, true, true, true, false, false, false, false]);
        let mask = predicate_mask(32, 16, 32, &otc());
        assert_eq!(mask, vec![true, false, true, false, true, false, true, false]);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn predicate_mask_validates_nnz() {
        let _ = predicate_mask(40, 0, 32, &otc());
    }

    #[test]
    fn mnemonics_and_display() {
        assert!(MachineInstruction::Bohmma32321.to_string().contains("BOHMMA.32321"));
        assert!(MachineInstruction::Ohmma8161 { predicate: false }.to_string().contains("skip"));
        assert!(MachineInstruction::Ohmma8161 { predicate: true }.issues());
        assert!(!MachineInstruction::Ohmma8161 { predicate: false }.issues());
        assert!(MachineInstruction::Popc.issues());
    }

    #[test]
    fn warp_program_counts_and_listing() {
        let mut prog = WarpProgram::new();
        prog.push_set(&SpWmmaSet::expand(20, 11, 32, &otc()));
        prog.push(MachineInstruction::StoreGlobal);
        assert_eq!(prog.count(&MachineInstruction::Popc), 2);
        assert_eq!(prog.count(&MachineInstruction::Bohmma32321), 1);
        assert_eq!(prog.count(&MachineInstruction::Ohmma8161 { predicate: true }), 3);
        assert_eq!(prog.issued(), 2 + 1 + 3 + 1);
        let listing = prog.listing();
        assert!(listing.contains("BOHMMA"));
        assert!(listing.contains("STG"));
        assert_eq!(prog.instructions().len(), 12);
    }
}
