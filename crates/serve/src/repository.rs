//! The pre-encoded model repository: a two-tier (memory + disk) cache of
//! device-parameterised weight encodings.
//!
//! The paper encodes pruned weights into the bitmap format **offline**
//! (Section III-A): weight sparsity is static, so re-encoding per request is
//! pure waste. [`ModelRepository`] reproduces that at the serving layer and
//! extends it in two directions:
//!
//! * **per-device encodings** — an encoded artifact is only executable on a
//!   kernel whose warp tiling it was built for, so the cache is keyed by
//!   `(ModelKey, EncodingSpec)`: a heterogeneous pool (V100 + A100) holds
//!   one artifact per device tiling and every batch executes the encoding
//!   native to the device it was dispatched to; and
//! * **persistence** — with [`ModelRepository::with_disk_cache`], every
//!   fresh prune+encode is serialised into the versioned, checksummed
//!   container of [`dsstc_formats::serialize`]. A restarted server restores
//!   the artifact from disk instead of re-encoding, so the warm-up cost is
//!   paid once per artifact *ever*, not once per process.
//!
//! The in-memory tier is bounded: past a configurable entry/byte
//! [`CacheBudget`], least-recently-used artifacts are evicted (in-flight
//! `Arc`s keep evicted models alive for their current batches).
//!
//! The disk tier has a **lifecycle** of its own (see
//! `docs/ENCODING_CACHE.md`): a checksummed `MANIFEST.dsstcm` tracks every
//! artifact's size and last-restore time; the store is GC'd back under its
//! own [`CacheBudget`] (LRU by last restore) whenever it is touched;
//! [`ModelRepository::warm_boot`] walks the store at startup with bounded
//! worker threads, restoring artifacts into the memory tier (healing
//! corrupt ones via a fresh encode and re-encoding stale-spec ones for the
//! current device pool) so the first request after a restart is a memory
//! hit; and every store mutation runs under a cross-process `flock` so two
//! servers sharing a directory cannot interleave GC with writes.
//!
//! Each served model carries two representations:
//!
//! * a **functional proxy** — one `proxy_dim x proxy_dim` GEMM per network
//!   layer whose weights are deterministically generated, magnitude-pruned
//!   to the layer's weight sparsity and pre-encoded. Request features flow
//!   through it on the actual dual-side SpGEMM kernel, so responses carry
//!   real outputs; and
//! * the **real layer table** — used by [`crate::BatchTimingModel`] to
//!   charge the modelled GPU time of the full-size network at the batch's
//!   size.

use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use dsstc_formats::{CodecError, TwoLevelBitmapMatrix};
use dsstc_kernels::bitmap_spgemm::BitmapSpGemm;
use dsstc_kernels::EncodingSpec;
use dsstc_models::{prune_magnitude, Layer, Network};
use dsstc_sim::GpuConfig;
use dsstc_tensor::{Matrix, RandomMatrixBuilder};

use crate::request::ModelKey;
use crate::telemetry::CacheOutcome;

/// Magic of the on-disk encoded-model artifact (a thin header over the
/// per-layer containers of [`dsstc_formats::serialize`]).
const STORE_MAGIC: [u8; 4] = *b"DSMR";

/// Version of the artifact header. Bump on layout change; mismatches fall
/// back to a fresh encode (and overwrite the stale file).
const STORE_VERSION: u16 = 1;

/// Filename of the store manifest that tracks every artifact's size and
/// last-restore time (the GC's LRU key). Deliberately not `.dsstc` so
/// store scans never mistake it for an artifact.
const MANIFEST_NAME: &str = "MANIFEST.dsstcm";

/// First line of a valid manifest; the trailing integer is the format
/// version. Unknown versions (or any parse/checksum failure) cause a
/// rebuild from a directory scan, never an error.
const MANIFEST_HEADER: &str = "dsstc-store-manifest 1";

/// Filename of the zero-length file the cross-process store lock is taken
/// on (`flock`, advisory — see [`store_lock`]).
const STORE_LOCK_NAME: &str = ".dsstc-store.lock";

/// Monotonic per-process sequence for unique temp-file names (artifacts and
/// manifests share it).
static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);

/// One layer of a served model: the pre-encoded proxy weights plus the real
/// layer descriptor the timing model charges.
#[derive(Clone, Debug)]
pub struct EncodedLayer {
    /// Layer name (from the network table).
    pub name: String,
    /// Proxy weights in the kernel's two-level bitmap B-operand layout,
    /// encoded once at load time.
    pub weights: TwoLevelBitmapMatrix,
    /// Whether ReLU follows this layer in the functional proxy.
    pub relu: bool,
    /// The real layer (shape + sparsities, with any uniform override
    /// applied) used for modelled timing.
    pub layer: Layer,
}

/// A fully loaded model: pruned, encoded, ready to serve.
#[derive(Clone, Debug)]
pub struct EncodedModel {
    /// The cache key this model was loaded under.
    pub key: ModelKey,
    /// The encoding identity (device tiling + operand layouts) the weights
    /// were encoded for; only a kernel with the same spec can execute them.
    pub spec: EncodingSpec,
    /// The real network table (with any sparsity override applied).
    pub network: Network,
    /// Feature width requests must supply.
    pub input_dim: usize,
    /// Pre-encoded layers in execution order.
    pub layers: Vec<EncodedLayer>,
    /// Wall-clock milliseconds spent obtaining the artifact — a fresh
    /// prune+encode on the cold path, a disk restore on the warm path (the
    /// cost the two cache tiers amortise away).
    pub encode_ms: f64,
    /// Whether the artifact was restored from the on-disk store instead of
    /// freshly encoded.
    pub from_disk: bool,
}

impl EncodedModel {
    /// Runs `input` (rows = samples, `input_dim` columns) through every
    /// pre-encoded proxy layer on the dual-side SpGEMM kernel and returns
    /// the final features.
    ///
    /// # Panics
    /// Panics if `input` does not have `input_dim` columns or `kernel`'s
    /// encoding spec differs from the one the weights were encoded for.
    pub fn forward(&self, kernel: &BitmapSpGemm, input: &Matrix) -> Matrix {
        assert_eq!(input.cols(), self.input_dim, "feature width mismatch");
        assert_eq!(
            kernel.encoding_spec(),
            self.spec,
            "kernel encoding spec does not match the model's"
        );
        let mut x = input.clone();
        for layer in &self.layers {
            let a_enc = kernel.encode_a(&x);
            x = kernel.execute_encoded(&a_enc, &layer.weights);
            if layer.relu {
                x = x.relu();
            }
        }
        x
    }

    /// Total non-zeros stored across the encoded proxy weights.
    pub fn encoded_nnz(&self) -> usize {
        self.layers.iter().map(|l| l.weights.nnz()).sum()
    }

    /// Modelled storage footprint of the encoded weights in bytes (FP16
    /// values + bitmaps) — what the in-memory cache budget charges.
    pub fn encoded_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.weights.storage().total()).sum()
    }
}

/// Bound on the in-memory encode-cache tier. The cache LRU-evicts past
/// either limit; `Arc`s handed out keep evicted models alive for batches
/// already holding them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheBudget {
    /// Most `(model, encoding)` artifacts held at once.
    pub max_entries: usize,
    /// Most modelled encoded bytes (see [`EncodedModel::encoded_bytes`])
    /// held at once.
    pub max_bytes: u64,
}

impl CacheBudget {
    /// An effectively unbounded budget.
    pub fn unbounded() -> Self {
        CacheBudget { max_entries: usize::MAX, max_bytes: u64::MAX }
    }

    /// The default bound of the on-disk store tier: wider than the
    /// in-memory default (disk is cheap, artifacts are small), but still
    /// finite so a long-lived shared `--encode-cache-dir` cannot grow
    /// without bound. Here `max_bytes` counts **file** bytes, not modelled
    /// encoded bytes.
    pub fn store_default() -> Self {
        CacheBudget { max_entries: 256, max_bytes: 4 << 30 }
    }
}

impl Default for CacheBudget {
    /// 64 artifacts / 512 MiB: far above any test or demo working set,
    /// while still bounding a pathological many-sparsity catalogue.
    fn default() -> Self {
        CacheBudget { max_entries: 64, max_bytes: 512 << 20 }
    }
}

/// Point-in-time counters of the two cache tiers, consumed by
/// [`crate::ServerStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EncodeCacheStats {
    /// Lookups served from the in-memory tier.
    pub hits: u64,
    /// Lookups that missed memory (each becomes a disk load or a fresh
    /// encode).
    pub misses: u64,
    /// Misses restored from the on-disk store.
    pub disk_loads: u64,
    /// Misses that paid the full prune+encode.
    pub fresh_encodes: u64,
    /// Artifacts LRU-evicted from the in-memory tier so far.
    pub evictions: u64,
    /// Cumulative wall-clock milliseconds spent prune+encoding.
    pub fresh_encode_ms: f64,
    /// Cumulative wall-clock milliseconds spent restoring from disk.
    pub disk_load_ms: f64,
    /// Artifacts the boot warmer restored intact from the store.
    pub warm_restored: u64,
    /// Stale-spec artifacts the boot warmer re-encoded for the current
    /// device pool (and removed from the store).
    pub warm_reencoded: u64,
    /// Corrupt artifacts the boot warmer healed via a fresh encode and
    /// rewrite.
    pub warm_healed: u64,
    /// Artifacts currently tracked by the store manifest (gauge).
    pub store_entries: u64,
    /// File bytes currently tracked by the store manifest (gauge).
    pub store_bytes: u64,
    /// Artifacts removed by store GC so far (budget evictions plus orphan
    /// and corrupt-name sweeps).
    pub store_gc_removed: u64,
}

impl EncodeCacheStats {
    /// Fraction of lookups served from the in-memory tier.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// What [`ModelRepository::warm_boot`] did: how many artifacts it restored,
/// re-encoded for the current pool, healed after corruption, skipped, and
/// garbage-collected.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WarmBootReport {
    /// Artifacts restored intact into the memory tier.
    pub restored: u64,
    /// Stale-spec artifacts re-encoded for the current device pool and
    /// removed from the store.
    pub reencoded: u64,
    /// Corrupt artifacts healed via a fresh encode (the store copy is
    /// rewritten in place).
    pub healed: u64,
    /// Artifacts left on disk untouched (foreign proxy width — they still
    /// count against the store budget but cannot serve this repository).
    pub skipped: u64,
    /// Files swept because they are not valid artifacts (leftover temp
    /// files, unparseable names).
    pub orphans_removed: u64,
    /// Artifacts LRU-evicted to bring the store back under its budget.
    pub gc_removed: u64,
    /// Wall-clock milliseconds the warm boot took end to end.
    pub elapsed_ms: f64,
}

impl WarmBootReport {
    /// Artifacts the warmer materialised into the memory tier (restored +
    /// re-encoded + healed).
    pub fn warmed(&self) -> u64 {
        self.restored + self.reencoded + self.healed
    }
}

/// One artifact tracked by the store manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
struct ManifestEntry {
    /// Artifact filename (no directory component; artifact names never
    /// contain whitespace, which keeps the manifest line format trivial).
    file: String,
    /// File size in bytes at the last manifest update.
    bytes: u64,
    /// Microseconds since the Unix epoch of the last restore (or persist)
    /// of this artifact — the GC's LRU key.
    last_restore_us: u64,
    /// The encoding-spec id recorded in the artifact name; compared against
    /// the device pool's specs to detect stale encodings at warm boot.
    spec_id: String,
}

/// A warm-boot work item: either restore an artifact for a spec the current
/// pool uses, or re-encode a stale-spec artifact's model for the pool.
enum WarmJob {
    Restore { key: ModelKey, spec: EncodingSpec },
    Reencode { key: ModelKey, file: String },
}

/// FNV-1a over `bytes`, the manifest's integrity checksum (same hash family
/// the wire frames use).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Microseconds since the Unix epoch (0 if the clock is before it).
fn unix_now_us() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_micros() as u64)
}

/// Parses an artifact filename (`{slug}-{s####|table}-d{dim}-{spec}.dsstc`)
/// back into its identity. `None` for anything that is not a well-formed
/// artifact name — those are orphans the warm-boot sweep removes.
fn parse_artifact_name(name: &str) -> Option<(ModelKey, usize, &str)> {
    let stem = name.strip_suffix(".dsstc")?;
    let mut parts = stem.splitn(4, '-');
    let slug = parts.next()?;
    let sparsity = parts.next()?;
    let dim = parts.next()?;
    let spec_id = parts.next()?;
    let model = crate::request::ModelId::ALL.into_iter().find(|m| m.slug() == slug)?;
    let sparsity_permille = if sparsity == "table" {
        None
    } else {
        let permille: u16 = sparsity.strip_prefix('s')?.parse().ok()?;
        if permille > 1000 {
            return None;
        }
        Some(permille)
    };
    let proxy_dim: usize = dim.strip_prefix('d')?.parse().ok()?;
    if proxy_dim == 0 || spec_id.is_empty() {
        return None;
    }
    Some((ModelKey { model, sparsity_permille }, proxy_dim, spec_id))
}

/// Reads and verifies the manifest. `None` on any missing file, bad
/// header, parse failure or checksum mismatch — callers rebuild from a
/// directory scan, so a corrupt manifest self-heals instead of erroring.
fn read_manifest(dir: &Path) -> Option<Vec<ManifestEntry>> {
    let text = std::fs::read_to_string(dir.join(MANIFEST_NAME)).ok()?;
    let (body, checksum_line) = text.rsplit_once("fnv ")?;
    let want = u64::from_str_radix(checksum_line.trim(), 16).ok()?;
    if fnv1a(body.as_bytes()) != want {
        return None;
    }
    let mut lines = body.lines();
    if lines.next()? != MANIFEST_HEADER {
        return None;
    }
    let mut entries = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let last_restore_us = fields.next()?.parse().ok()?;
        let bytes = fields.next()?.parse().ok()?;
        let spec_id = fields.next()?.to_string();
        let file = fields.next()?.to_string();
        if fields.next().is_some() {
            return None;
        }
        entries.push(ManifestEntry { file, bytes, last_restore_us, spec_id });
    }
    Some(entries)
}

/// Serialises and atomically replaces the manifest (temp + rename, like
/// artifact writes, so a crash mid-write never publishes a torn manifest).
fn write_manifest(dir: &Path, entries: &[ManifestEntry]) -> std::io::Result<()> {
    let mut body = String::new();
    body.push_str(MANIFEST_HEADER);
    body.push('\n');
    for e in entries {
        body.push_str(&format!("{} {} {} {}\n", e.last_restore_us, e.bytes, e.spec_id, e.file));
    }
    let text = format!("{body}fnv {:016x}\n", fnv1a(body.as_bytes()));
    let path = dir.join(MANIFEST_NAME);
    let tmp = path.with_extension(format!(
        "dsstcm.tmp-{}-{}",
        std::process::id(),
        WRITE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result = std::fs::write(&tmp, text.as_bytes()).and_then(|()| std::fs::rename(&tmp, &path));
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Rebuilds manifest entries from a directory scan: every `.dsstc` file,
/// sized from its metadata, last-restore approximated by mtime, spec id
/// parsed from the name (empty when unparseable — the warm-boot sweep
/// removes those). This is the self-healing path behind a missing or
/// corrupt manifest.
fn scan_store(dir: &Path) -> Vec<ManifestEntry> {
    let mut entries = Vec::new();
    let Ok(read_dir) = std::fs::read_dir(dir) else {
        return entries;
    };
    for entry in read_dir.flatten() {
        let Ok(name) = entry.file_name().into_string() else {
            continue;
        };
        if !name.ends_with(".dsstc") {
            continue;
        }
        let Ok(meta) = entry.metadata() else {
            continue;
        };
        let modified_us = meta
            .modified()
            .ok()
            .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
            .map_or(0, |d| d.as_micros() as u64);
        let spec_id =
            parse_artifact_name(&name).map_or(String::new(), |(_, _, spec)| spec.to_string());
        entries.push(ManifestEntry {
            file: name,
            bytes: meta.len(),
            last_restore_us: modified_us,
            spec_id,
        });
    }
    entries.sort_by(|a, b| a.file.cmp(&b.file));
    entries
}

/// Sum of manifest file sizes.
fn manifest_bytes(entries: &[ManifestEntry]) -> u64 {
    entries.iter().map(|e| e.bytes).sum()
}

#[derive(Debug)]
struct CacheEntry {
    model: Arc<EncodedModel>,
    bytes: u64,
    last_used: u64,
}

/// Cache map plus the set of keys currently being encoded, so the mutex is
/// never held across a (slow) load: concurrent `get`s for *other* keys
/// proceed, and only same-key callers wait.
#[derive(Debug, Default)]
struct CacheState {
    models: HashMap<(ModelKey, EncodingSpec), CacheEntry>,
    in_flight: HashSet<(ModelKey, EncodingSpec)>,
    tick: u64,
    total_bytes: u64,
}

/// Loads, prunes and pre-encodes models, caching the result per
/// `(model, sparsity, encoding)` key across an in-memory LRU tier and an
/// optional on-disk store.
///
/// `get` / `get_for` are cheap after the first call for a key; the counters
/// feed the server's encode-cache metrics.
#[derive(Debug)]
pub struct ModelRepository {
    proxy_dim: usize,
    base_gpu: GpuConfig,
    default_spec: EncodingSpec,
    kernel: BitmapSpGemm,
    budget: CacheBudget,
    store_budget: CacheBudget,
    disk_dir: Option<PathBuf>,
    cache: Mutex<CacheState>,
    loaded: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    disk_loads: AtomicU64,
    fresh_encodes: AtomicU64,
    evictions: AtomicU64,
    fresh_encode_us: AtomicU64,
    disk_load_us: AtomicU64,
    warm_restored: AtomicU64,
    warm_reencoded: AtomicU64,
    warm_healed: AtomicU64,
    store_gc_removed: AtomicU64,
    store_entries: AtomicU64,
    store_bytes: AtomicU64,
}

impl ModelRepository {
    /// Creates an empty repository whose **default** encodings match `gpu`'s
    /// native kernel tiling and whose proxies are `proxy_dim` wide. Other
    /// devices' encodings are served through [`Self::get_for`].
    ///
    /// # Panics
    /// Panics if `proxy_dim` is zero.
    pub fn new(gpu: GpuConfig, proxy_dim: usize) -> Self {
        assert!(proxy_dim > 0, "proxy dimension must be non-zero");
        ModelRepository {
            proxy_dim,
            default_spec: EncodingSpec::for_gpu(&gpu),
            kernel: BitmapSpGemm::for_device(gpu.clone()),
            base_gpu: gpu,
            budget: CacheBudget::default(),
            store_budget: CacheBudget::store_default(),
            disk_dir: None,
            cache: Mutex::new(CacheState::default()),
            loaded: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            disk_loads: AtomicU64::new(0),
            fresh_encodes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            fresh_encode_us: AtomicU64::new(0),
            disk_load_us: AtomicU64::new(0),
            warm_restored: AtomicU64::new(0),
            warm_reencoded: AtomicU64::new(0),
            warm_healed: AtomicU64::new(0),
            store_gc_removed: AtomicU64::new(0),
            store_entries: AtomicU64::new(0),
            store_bytes: AtomicU64::new(0),
        }
    }

    /// Enables the on-disk tier under `dir` (created if missing): fresh
    /// encodes are persisted, and later repositories pointed at the same
    /// directory restore them instead of re-encoding.
    pub fn with_disk_cache(mut self, dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        let _ = std::fs::create_dir_all(&dir); // best effort; store() retries
        self.disk_dir = Some(dir);
        self
    }

    /// Overrides the in-memory cache budget.
    pub fn with_budget(mut self, budget: CacheBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Overrides the on-disk store budget (entries + **file** bytes).
    /// Enforced by [`Self::gc_store`], by [`Self::warm_boot`], and on every
    /// store touch (restore or persist).
    pub fn with_store_budget(mut self, budget: CacheBudget) -> Self {
        self.store_budget = budget;
        self
    }

    /// Feature width requests must supply.
    pub fn input_dim(&self) -> usize {
        self.proxy_dim
    }

    /// The in-memory budget in force.
    pub fn budget(&self) -> CacheBudget {
        self.budget
    }

    /// The on-disk store budget in force.
    pub fn store_budget(&self) -> CacheBudget {
        self.store_budget
    }

    /// Last-known `(entries, file bytes)` of the on-disk store, from the
    /// most recent manifest update (both 0 until the store is touched).
    pub fn store_usage(&self) -> (u64, u64) {
        (self.store_entries.load(Ordering::Relaxed), self.store_bytes.load(Ordering::Relaxed))
    }

    /// The on-disk store directory, if persistence is enabled.
    pub fn disk_cache_dir(&self) -> Option<&Path> {
        self.disk_dir.as_deref()
    }

    /// The default encoding identity (the primary device's).
    pub fn default_spec(&self) -> EncodingSpec {
        self.default_spec
    }

    /// The SpGEMM kernel matching the default encoding spec.
    pub fn kernel(&self) -> &BitmapSpGemm {
        &self.kernel
    }

    /// A kernel able to produce and execute encodings under `spec` (cheap
    /// to build; per-device workers hold their own).
    pub fn kernel_for(&self, spec: EncodingSpec) -> BitmapSpGemm {
        BitmapSpGemm::new(self.base_gpu.clone()).with_tiling(spec.tiling)
    }

    /// Returns the encoded model for `key` under the default spec (see
    /// [`Self::get_for`]).
    pub fn get(&self, key: ModelKey) -> Arc<EncodedModel> {
        self.get_for(key, self.default_spec)
    }

    /// Returns the model encoded for `spec`, loading it on the first
    /// request (a cache **miss**: restored from disk when the store has it,
    /// freshly prune+encoded otherwise) and reusing the cached artifact on
    /// every later one (a **hit**).
    ///
    /// The cache lock is **not** held while encoding: a miss marks the key
    /// in-flight, drops the lock, loads, then publishes. Concurrent callers
    /// for the same key block until the single load finishes (counted as
    /// hits — they are served from the cache); callers for other keys are
    /// unaffected.
    pub fn get_for(&self, key: ModelKey, spec: EncodingSpec) -> Arc<EncodedModel> {
        self.get_for_traced(key, spec).0
    }

    /// [`Self::get_for`], additionally reporting how the lookup was
    /// satisfied — an in-memory [`CacheOutcome::Hit`], a miss restored
    /// from the on-disk store, or a miss that paid the full prune+encode —
    /// so workers can stamp the outcome onto the request trace.
    pub fn get_for_traced(
        &self,
        key: ModelKey,
        spec: EncodingSpec,
    ) -> (Arc<EncodedModel>, CacheOutcome) {
        let cache_key = (key, spec);
        let mut cache = self.cache.lock().expect("repository mutex poisoned");
        loop {
            cache.tick += 1;
            let tick = cache.tick;
            if let Some(entry) = cache.models.get_mut(&cache_key) {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return (Arc::clone(&entry.model), CacheOutcome::Hit);
            }
            if cache.in_flight.insert(cache_key) {
                break; // this caller owns the load
            }
            // Someone else is encoding this key; wait for them to publish.
            cache = self.loaded.wait(cache).expect("repository mutex poisoned");
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        drop(cache);
        let model = Arc::new(self.load(key, spec));
        let outcome =
            if model.from_disk { CacheOutcome::MissRestored } else { CacheOutcome::MissFresh };
        let mut cache = self.cache.lock().expect("repository mutex poisoned");
        cache.tick += 1;
        let entry = CacheEntry {
            bytes: model.encoded_bytes(),
            last_used: cache.tick,
            model: Arc::clone(&model),
        };
        cache.total_bytes += entry.bytes;
        cache.models.insert(cache_key, entry);
        self.evict_over_budget(&mut cache);
        cache.in_flight.remove(&cache_key);
        self.loaded.notify_all();
        (model, outcome)
    }

    /// Evicts least-recently-used entries until the budget holds, keeping
    /// at least one entry (the most recent insert always survives its own
    /// arrival).
    fn evict_over_budget(&self, cache: &mut CacheState) {
        while cache.models.len() > 1
            && (cache.models.len() > self.budget.max_entries
                || cache.total_bytes > self.budget.max_bytes)
        {
            let victim = cache
                .models
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(&k, _)| k)
                .expect("non-empty cache");
            if let Some(entry) = cache.models.remove(&victim) {
                cache.total_bytes -= entry.bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Cache hits so far.
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= disk loads + fresh encodes) so far.
    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fraction of `get` calls served from the in-memory cache.
    pub fn hit_rate(&self) -> f64 {
        self.counters().hit_rate()
    }

    /// A snapshot of every cache counter.
    pub fn counters(&self) -> EncodeCacheStats {
        EncodeCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            disk_loads: self.disk_loads.load(Ordering::Relaxed),
            fresh_encodes: self.fresh_encodes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            fresh_encode_ms: self.fresh_encode_us.load(Ordering::Relaxed) as f64 / 1e3,
            disk_load_ms: self.disk_load_us.load(Ordering::Relaxed) as f64 / 1e3,
            warm_restored: self.warm_restored.load(Ordering::Relaxed),
            warm_reencoded: self.warm_reencoded.load(Ordering::Relaxed),
            warm_healed: self.warm_healed.load(Ordering::Relaxed),
            store_entries: self.store_entries.load(Ordering::Relaxed),
            store_bytes: self.store_bytes.load(Ordering::Relaxed),
            store_gc_removed: self.store_gc_removed.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct artifacts currently held in memory.
    pub fn len(&self) -> usize {
        self.cache.lock().expect("repository mutex poisoned").models.len()
    }

    /// Whether no artifact is held in memory.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Modelled bytes currently held by the in-memory tier.
    pub fn cached_bytes(&self) -> u64 {
        self.cache.lock().expect("repository mutex poisoned").total_bytes
    }

    /// The slow path behind a memory miss: restore from the disk store when
    /// possible, prune+encode (and persist) otherwise.
    fn load(&self, key: ModelKey, spec: EncodingSpec) -> EncodedModel {
        if let Some(dir) = &self.disk_dir {
            let path = self.artifact_path(dir, key, spec);
            let started = Instant::now();
            if let Ok(model) = self.restore(&path, key, spec) {
                let us = started.elapsed().as_micros() as u64;
                self.disk_loads.fetch_add(1, Ordering::Relaxed);
                self.disk_load_us.fetch_add(us, Ordering::Relaxed);
                self.note_store_touch(dir, &path);
                return model;
            }
            // Missing, stale-version or corrupt artifact: fall through to a
            // fresh encode, which rewrites the file below.
        }
        let started = Instant::now();
        let model = self.encode_fresh(key, spec);
        let us = started.elapsed().as_micros() as u64;
        self.fresh_encodes.fetch_add(1, Ordering::Relaxed);
        self.fresh_encode_us.fetch_add(us, Ordering::Relaxed);
        if let Some(dir) = &self.disk_dir {
            // Best effort: a failed persist only costs the next restart its
            // warm start.
            if self.persist(dir, &model).is_ok() {
                let path = self.artifact_path(dir, key, spec);
                self.note_store_touch(dir, &path);
            }
        }
        model
    }

    /// Prunes + encodes one model for `spec` (the cold path).
    fn encode_fresh(&self, key: ModelKey, spec: EncodingSpec) -> EncodedModel {
        let started = Instant::now();
        let kernel = self.kernel_for(spec);
        // The real layer table with the uniform sparsity override applied,
        // so both the proxy weights and the timing model see it.
        let network = key.network();
        let layers_effective: Vec<Layer> = network.layers().to_vec();
        let relu = key.model.uses_relu();
        let layers = layers_effective
            .into_iter()
            .enumerate()
            .map(|(i, layer)| {
                let dense = RandomMatrixBuilder::new(self.proxy_dim, self.proxy_dim)
                    .seed(proxy_seed(key, i))
                    .value_range(-0.5, 0.5)
                    .build();
                let pruned = prune_magnitude(&dense, layer.weight_sparsity);
                EncodedLayer {
                    name: layer.name.clone(),
                    weights: kernel.encode_b(&pruned),
                    relu,
                    layer,
                }
            })
            .collect();
        EncodedModel {
            key,
            spec,
            network,
            input_dim: self.proxy_dim,
            layers,
            encode_ms: started.elapsed().as_secs_f64() * 1e3,
            from_disk: false,
        }
    }

    /// The on-disk artifact path for one `(model, sparsity, proxy,
    /// encoding)` identity.
    fn artifact_path(&self, dir: &Path, key: ModelKey, spec: EncodingSpec) -> PathBuf {
        let sparsity = match key.sparsity_permille {
            Some(p) => format!("s{p:04}"),
            None => "table".to_string(),
        };
        dir.join(format!(
            "{}-{}-d{}-{}.dsstc",
            key.model.slug(),
            sparsity,
            self.proxy_dim,
            spec.id()
        ))
    }

    /// Restores one artifact from disk, fully validating the header and
    /// every per-layer container against the expected identity.
    fn restore(
        &self,
        path: &Path,
        key: ModelKey,
        spec: EncodingSpec,
    ) -> Result<EncodedModel, CodecError> {
        let started = Instant::now();
        let file = std::fs::File::open(path)?;
        let mut reader = std::io::BufReader::new(file);
        let mut header = [0u8; 4 + 2 + 4];
        std::io::Read::read_exact(&mut reader, &mut header)?;
        if header[..4] != STORE_MAGIC {
            return Err(CodecError::BadMagic([header[0], header[1], header[2], header[3]]));
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != STORE_VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let layer_count = u32::from_le_bytes([header[6], header[7], header[8], header[9]]);
        let network = key.network();
        if layer_count as usize != network.layers().len() {
            return Err(CodecError::Malformed("layer count does not match the network table"));
        }
        let relu = key.model.uses_relu();
        let mut layers = Vec::with_capacity(layer_count as usize);
        for layer in network.layers() {
            let weights = TwoLevelBitmapMatrix::read_from(&mut reader)?;
            if weights.rows() != self.proxy_dim || weights.cols() != self.proxy_dim {
                return Err(CodecError::Malformed("weight shape does not match the proxy"));
            }
            if !spec.matches_b(&weights) {
                return Err(CodecError::Malformed("weight encoding does not match the spec"));
            }
            layers.push(EncodedLayer {
                name: layer.name.clone(),
                weights,
                relu,
                layer: layer.clone(),
            });
        }
        Ok(EncodedModel {
            key,
            spec,
            network,
            input_dim: self.proxy_dim,
            layers,
            encode_ms: started.elapsed().as_secs_f64() * 1e3,
            from_disk: true,
        })
    }

    /// Persists one artifact: written to a temporary sibling first, then
    /// atomically renamed into place so a crash mid-write never leaves a
    /// half-artifact under the final name. The temp name is unique per
    /// process and write, so concurrent writers sharing one cache dir never
    /// interleave into (and then publish) one file — the last complete
    /// rename wins, every published artifact is internally consistent.
    fn persist(&self, dir: &Path, model: &EncodedModel) -> Result<(), CodecError> {
        std::fs::create_dir_all(dir)?;
        let path = self.artifact_path(dir, model.key, model.spec);
        let tmp = path.with_extension(format!(
            "tmp-{}-{}",
            std::process::id(),
            WRITE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let write = || -> Result<(), CodecError> {
            let file = std::fs::File::create(&tmp)?;
            let mut writer = std::io::BufWriter::new(file);
            writer.write_all(&STORE_MAGIC)?;
            writer.write_all(&STORE_VERSION.to_le_bytes())?;
            writer.write_all(&(model.layers.len() as u32).to_le_bytes())?;
            for layer in &model.layers {
                layer.weights.write_to(&mut writer)?;
            }
            writer.flush()?;
            std::fs::rename(&tmp, &path)?;
            Ok(())
        };
        let result = write();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    /// Records a restore/persist of `path` in the store manifest (upserting
    /// the entry as most-recently-used) and GCs the store back under its
    /// budget, all under the cross-process store lock. Best effort: a
    /// failed lock or manifest write costs bookkeeping, never correctness.
    fn note_store_touch(&self, dir: &Path, path: &Path) {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            return;
        };
        let Some(_lock) = store_lock::StoreLock::acquire(dir) else {
            return;
        };
        let mut entries = read_manifest(dir).unwrap_or_else(|| scan_store(dir));
        entries.retain(|e| dir.join(&e.file).exists());
        let bytes = std::fs::metadata(path).map_or(0, |m| m.len());
        // Strictly-greater-than-everything timestamp so LRU order is exact
        // even under coarse (or backwards-stepping) system clocks.
        let now = unix_now_us()
            .max(entries.iter().map(|e| e.last_restore_us).max().unwrap_or(0).saturating_add(1));
        let spec_id =
            parse_artifact_name(name).map_or(String::new(), |(_, _, spec)| spec.to_string());
        match entries.iter_mut().find(|e| e.file == name) {
            Some(entry) => {
                entry.bytes = bytes;
                entry.last_restore_us = now;
            }
            None => entries.push(ManifestEntry {
                file: name.to_string(),
                bytes,
                last_restore_us: now,
                spec_id,
            }),
        }
        self.gc_entries(dir, &mut entries);
        let _ = write_manifest(dir, &entries);
        self.update_store_gauges(&entries);
    }

    /// Evicts artifacts until the store budget holds (keeping at least
    /// one, mirroring the memory tier), deleting both the file and its
    /// manifest entry. **Foreign-proxy-width artifacts go first**: warm
    /// boot skips them (this repository can never restore them) yet their
    /// bytes still count against the budget, so they must not be able to
    /// squeeze out artifacts this process actually serves from. Within
    /// each class eviction is least-recently-restored, with timestamp ties
    /// broken by filename so GC order is deterministic. Returns how many
    /// were removed. Caller holds the store lock.
    fn gc_entries(&self, dir: &Path, entries: &mut Vec<ManifestEntry>) -> u64 {
        let native = |e: &ManifestEntry| {
            parse_artifact_name(&e.file).is_some_and(|(_, dim, _)| dim == self.proxy_dim)
        };
        let mut removed = 0;
        while entries.len() > 1
            && (entries.len() > self.store_budget.max_entries
                || manifest_bytes(entries) > self.store_budget.max_bytes)
        {
            let victim = entries
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    native(a)
                        .cmp(&native(b))
                        .then_with(|| a.last_restore_us.cmp(&b.last_restore_us))
                        .then_with(|| a.file.cmp(&b.file))
                })
                .map(|(i, _)| i)
                .expect("non-empty entries");
            let entry = entries.remove(victim);
            let _ = std::fs::remove_file(dir.join(&entry.file));
            removed += 1;
        }
        self.store_gc_removed.fetch_add(removed, Ordering::Relaxed);
        removed
    }

    /// Publishes the manifest's entry/byte totals to the store gauges.
    fn update_store_gauges(&self, entries: &[ManifestEntry]) {
        self.store_entries.store(entries.len() as u64, Ordering::Relaxed);
        self.store_bytes.store(manifest_bytes(entries), Ordering::Relaxed);
    }

    /// Garbage-collects the on-disk store back under its budget right now
    /// (reading — or rebuilding — the manifest under the store lock) and
    /// returns how many artifacts were removed. No-op without a disk tier.
    pub fn gc_store(&self) -> u64 {
        let Some(dir) = self.disk_dir.clone() else {
            return 0;
        };
        let Some(_lock) = store_lock::StoreLock::acquire(&dir) else {
            return 0;
        };
        let mut entries = read_manifest(&dir).unwrap_or_else(|| scan_store(&dir));
        entries.retain(|e| dir.join(&e.file).exists());
        let removed = self.gc_entries(&dir, &mut entries);
        let _ = write_manifest(&dir, &entries);
        self.update_store_gauges(&entries);
        removed
    }

    /// Removes one artifact (and its manifest entry) from the store, under
    /// the store lock. Used when warm boot re-encodes a stale-spec
    /// artifact: the replacement was persisted under its own name.
    fn remove_store_entry(&self, dir: &Path, file: &str) {
        let Some(_lock) = store_lock::StoreLock::acquire(dir) else {
            return;
        };
        let mut entries = read_manifest(dir).unwrap_or_else(|| scan_store(dir));
        entries.retain(|e| e.file != file);
        entries.retain(|e| dir.join(&e.file).exists());
        let _ = std::fs::remove_file(dir.join(file));
        let _ = write_manifest(dir, &entries);
        self.update_store_gauges(&entries);
    }

    /// Walks the on-disk store at startup with at most `threads` worker
    /// threads (0 = the host's available parallelism) and restores every
    /// artifact usable under one of `specs` into the memory tier, so the
    /// first request after a restart is a memory **hit**.
    ///
    /// Before any restore, under the cross-process store lock: leftover
    /// temp files and unparseable artifact names are swept, the manifest is
    /// read (or rebuilt from a directory scan if missing/corrupt), and the
    /// store is GC'd back under its budget. Then, lock released, the
    /// surviving artifacts are processed oldest-first (so the most recently
    /// used end up most recent in the memory LRU):
    ///
    /// * artifacts whose spec id matches one of `specs` are **restored**
    ///   (a corrupt payload self-heals through the normal fresh-encode
    ///   fallback and is counted as **healed**);
    /// * artifacts for this proxy width whose spec no device uses any more
    ///   are **re-encoded** for every wanted spec and the stale file is
    ///   removed (re-encode-on-spec-change);
    /// * artifacts for a different proxy width are **skipped** (another
    ///   server's working set; they stay on disk and in the budget).
    ///
    /// Returns what happened; the same counts feed the
    /// `dsstc_cache_warm_*` metric family via [`Self::counters`]. No-op
    /// without a disk tier.
    pub fn warm_boot(&self, specs: &[EncodingSpec], threads: usize) -> WarmBootReport {
        let started = Instant::now();
        let mut report = WarmBootReport::default();
        let Some(dir) = self.disk_dir.clone() else {
            return report;
        };
        let mut wanted: Vec<EncodingSpec> = Vec::new();
        for &spec in specs {
            if !wanted.contains(&spec) {
                wanted.push(spec);
            }
        }
        let wanted_ids: Vec<String> = wanted.iter().map(|s| s.id()).collect();

        // Phase 1, under the store lock: sweep, read-or-rebuild, GC.
        let mut jobs: Vec<WarmJob> = Vec::new();
        {
            let Some(_lock) = store_lock::StoreLock::acquire(&dir) else {
                return report;
            };
            if let Ok(read_dir) = std::fs::read_dir(&dir) {
                for entry in read_dir.flatten() {
                    let name = entry.file_name().to_string_lossy().into_owned();
                    if name.contains(".tmp-") {
                        let _ = std::fs::remove_file(entry.path());
                        report.orphans_removed += 1;
                    }
                }
            }
            let mut entries = read_manifest(&dir).unwrap_or_else(|| scan_store(&dir));
            entries.retain(|e| dir.join(&e.file).exists());
            // Pick up artifacts the manifest missed (e.g. written by a
            // process that crashed between rename and manifest update).
            for scanned in scan_store(&dir) {
                if !entries.iter().any(|e| e.file == scanned.file) {
                    entries.push(scanned);
                }
            }
            entries.retain(|e| {
                if parse_artifact_name(&e.file).is_some() {
                    true
                } else {
                    let _ = std::fs::remove_file(dir.join(&e.file));
                    report.orphans_removed += 1;
                    false
                }
            });
            report.gc_removed = self.gc_entries(&dir, &mut entries);
            let _ = write_manifest(&dir, &entries);
            self.update_store_gauges(&entries);
            // Oldest first: most-recently-restored artifacts are published
            // into the memory LRU last and survive a tight memory budget.
            entries.sort_by(|a, b| {
                a.last_restore_us.cmp(&b.last_restore_us).then_with(|| a.file.cmp(&b.file))
            });
            for entry in &entries {
                let Some((key, proxy_dim, spec_id)) = parse_artifact_name(&entry.file) else {
                    continue;
                };
                if proxy_dim != self.proxy_dim {
                    report.skipped += 1;
                    continue;
                }
                match wanted_ids.iter().position(|id| id == spec_id) {
                    Some(i) => jobs.push(WarmJob::Restore { key, spec: wanted[i] }),
                    None => jobs.push(WarmJob::Reencode { key, file: entry.file.clone() }),
                }
            }
        } // lock released: restore/persist paths re-acquire it per touch

        // Phase 2: bounded workers drain the queue through the normal
        // get_for path, which restores, heals and publishes.
        let restored = AtomicU64::new(0);
        let reencoded = AtomicU64::new(0);
        let healed = AtomicU64::new(0);
        let workers = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        }
        .min(jobs.len().max(1));
        // Workers pop from the back; reverse so the oldest job runs first.
        jobs.reverse();
        let queue = Mutex::new(jobs);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let job = queue.lock().expect("warm-boot queue poisoned").pop();
                    let Some(job) = job else {
                        break;
                    };
                    match job {
                        WarmJob::Restore { key, spec } => {
                            let (_, outcome) = self.get_for_traced(key, spec);
                            match outcome {
                                CacheOutcome::MissFresh => {
                                    // Corrupt on disk: the fresh encode
                                    // already rewrote the artifact.
                                    healed.fetch_add(1, Ordering::Relaxed);
                                }
                                CacheOutcome::Hit | CacheOutcome::MissRestored => {
                                    restored.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        WarmJob::Reencode { key, file } => {
                            for &spec in &wanted {
                                let _ = self.get_for(key, spec);
                            }
                            self.remove_store_entry(&dir, &file);
                            reencoded.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        report.restored = restored.into_inner();
        report.reencoded = reencoded.into_inner();
        report.healed = healed.into_inner();
        report.elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
        self.warm_restored.fetch_add(report.restored, Ordering::Relaxed);
        self.warm_reencoded.fetch_add(report.reencoded, Ordering::Relaxed);
        self.warm_healed.fetch_add(report.healed, Ordering::Relaxed);
        self.store_gc_removed.fetch_add(report.orphans_removed, Ordering::Relaxed);
        report
    }
}

/// Cross-process advisory locking of the store directory.
///
/// GC, manifest updates and the warm-boot sweep mutate shared files, so two
/// servers pointed at one `--encode-cache-dir` take `flock(LOCK_EX)` on a
/// dedicated lock file first — one process's GC can no longer interleave
/// with another's manifest rewrite. Artifact *payload* writes stay safe
/// without the lock (unique temp name + atomic rename), so the hot restore
/// path never blocks on it; only the brief manifest touch afterwards does.
///
/// The lock is advisory and held on an open file descriptor: dropping the
/// guard (or crashing) releases it, so a dead server never wedges the
/// store. Note `flock` locks are per open-file-description — two handles
/// *within one process* exclude each other too, which is why no store-lock
/// guard is ever held across `get_for` (its persist path re-acquires).
mod store_lock {
    use std::fs::File;
    use std::path::Path;

    /// Holds `flock(LOCK_EX)` on the store's lock file until dropped.
    #[derive(Debug)]
    pub(super) struct StoreLock {
        _file: File,
    }

    #[cfg(unix)]
    mod sys {
        use std::os::unix::io::AsRawFd;

        const LOCK_EX: i32 = 2;
        const LOCK_NB: i32 = 4;

        extern "C" {
            fn flock(fd: i32, operation: i32) -> i32;
        }

        /// `flock`s `file` exclusively; blocking unless `nonblocking`.
        pub(super) fn lock_exclusive(file: &std::fs::File, nonblocking: bool) -> bool {
            let op = if nonblocking { LOCK_EX | LOCK_NB } else { LOCK_EX };
            unsafe { flock(file.as_raw_fd(), op) == 0 }
        }
    }

    #[cfg(not(unix))]
    mod sys {
        /// Without `flock` the lock degrades to single-process semantics —
        /// temp+rename keeps individual files consistent either way.
        pub(super) fn lock_exclusive(_file: &std::fs::File, _nonblocking: bool) -> bool {
            true
        }
    }

    impl StoreLock {
        /// Blocks until the exclusive lock is held. `None` when the lock
        /// file cannot even be created — store mutations then proceed
        /// without bookkeeping, matching the store's best-effort posture.
        pub(super) fn acquire(dir: &Path) -> Option<StoreLock> {
            Self::lock(dir, false)
        }

        /// Non-blocking variant: `None` when another holder (process or
        /// file handle) has the lock right now.
        #[cfg(test)]
        pub(super) fn try_acquire(dir: &Path) -> Option<StoreLock> {
            Self::lock(dir, true)
        }

        fn lock(dir: &Path, nonblocking: bool) -> Option<StoreLock> {
            let file = File::options()
                .create(true)
                .truncate(false)
                .write(true)
                .open(dir.join(super::STORE_LOCK_NAME))
                .ok()?;
            sys::lock_exclusive(&file, nonblocking).then_some(StoreLock { _file: file })
        }
    }
}

/// Deterministic per-layer weight seed so repeated loads (and separate
/// server instances) produce identical proxies. Deliberately independent of
/// the encoding spec: every device encodes the *same* pruned weights, just
/// tiled for its own kernel.
fn proxy_seed(key: ModelKey, layer_index: usize) -> u64 {
    let mut seed: u64 = 0x5EED_0F00;
    for b in key.model.name().bytes() {
        seed = seed.rotate_left(7) ^ u64::from(b).wrapping_mul(0x100_0000_01B3);
    }
    seed ^ (u64::from(key.sparsity_permille.map_or(0xFFFF, |p| p)) << 40)
        ^ ((layer_index as u64) << 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ModelId;

    fn repo() -> ModelRepository {
        ModelRepository::new(GpuConfig::v100(), 64)
    }

    /// A unique, self-cleaning temp directory for disk-cache tests.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "dsstc-repo-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            TempDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn first_get_misses_then_hits() {
        let r = repo();
        assert!(r.is_empty());
        let key = ModelKey::new(ModelId::BertBase, None);
        let m1 = r.get(key);
        assert_eq!((r.hit_count(), r.miss_count()), (0, 1));
        let m2 = r.get(key);
        assert_eq!((r.hit_count(), r.miss_count()), (1, 1));
        assert!(Arc::ptr_eq(&m1, &m2));
        assert_eq!(r.len(), 1);
        assert!((r.hit_rate() - 0.5).abs() < 1e-12);
        // No disk tier: the miss was a fresh encode.
        let counters = r.counters();
        assert_eq!(counters.fresh_encodes, 1);
        assert_eq!(counters.disk_loads, 0);
        assert!(counters.fresh_encode_ms >= 0.0);
        assert!(!m1.from_disk);
    }

    #[test]
    fn distinct_sparsities_are_distinct_cache_entries() {
        let r = repo();
        let _ = r.get(ModelKey::new(ModelId::RnnLm, Some(0.8)));
        let _ = r.get(ModelKey::new(ModelId::RnnLm, Some(0.95)));
        let _ = r.get(ModelKey::new(ModelId::RnnLm, None));
        assert_eq!(r.len(), 3);
        assert_eq!(r.miss_count(), 3);
    }

    #[test]
    fn distinct_specs_are_distinct_cache_entries_with_matching_tilings() {
        let r = repo();
        let key = ModelKey::new(ModelId::BertBase, Some(0.9));
        let v100 = r.get_for(key, EncodingSpec::for_gpu(&GpuConfig::v100()));
        let a100 = r.get_for(key, EncodingSpec::for_gpu(&GpuConfig::a100()));
        assert_eq!(r.len(), 2);
        assert_eq!(r.miss_count(), 2);
        assert_ne!(v100.spec, a100.spec);
        for (lv, la) in v100.layers.iter().zip(&a100.layers) {
            assert!(v100.spec.matches_b(&lv.weights));
            assert!(a100.spec.matches_b(&la.weights));
            // Same pruned weights under both tilings.
            assert_eq!(lv.weights.decode(), la.weights.decode(), "{}", lv.name);
        }
        // Each spec's model executes on its own kernel and agrees with the
        // other device's result.
        let input = Matrix::random_sparse(4, 64, 0.5, dsstc_tensor::SparsityPattern::Uniform, 1);
        let out_v = v100.forward(r.kernel(), &input);
        let out_a = a100.forward(&r.kernel_for(a100.spec), &input);
        assert!(out_v.approx_eq(&out_a, 1e-3));
    }

    #[test]
    fn encoded_layers_match_table_and_override() {
        let r = repo();
        let m = r.get(ModelKey::new(ModelId::BertBase, Some(0.9)));
        assert_eq!(m.layers.len(), ModelId::BertBase.network().layers().len());
        for layer in &m.layers {
            assert!((layer.weights.sparsity() - 0.9).abs() < 0.02, "{}", layer.name);
            assert_eq!(layer.layer.weight_sparsity, 0.9);
            assert!(!layer.relu);
        }
        assert!(m.encoded_nnz() > 0);
        assert!(m.encoded_bytes() > 0);
        assert!(m.encode_ms >= 0.0);
    }

    #[test]
    fn forward_matches_decoded_dense_reference() {
        let r = ModelRepository::new(GpuConfig::v100(), 32);
        let m = r.get(ModelKey::new(ModelId::ResNet18, Some(0.85)));
        let input = Matrix::random_sparse(8, 32, 0.5, dsstc_tensor::SparsityPattern::Uniform, 3);
        let out = m.forward(r.kernel(), &input);
        // Dense reference: decode each encoded layer and replay the chain.
        let mut reference = input.clone();
        for layer in &m.layers {
            reference = reference.matmul(&layer.weights.decode());
            reference = reference.relu();
        }
        assert_eq!(out.rows(), 8);
        assert_eq!(out.cols(), 32);
        assert!(out.approx_eq(&reference, 5e-2));
    }

    #[test]
    fn concurrent_gets_for_one_key_encode_exactly_once() {
        let r = std::sync::Arc::new(repo());
        let key = ModelKey::new(ModelId::ResNet50, None);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = std::sync::Arc::clone(&r);
                std::thread::spawn(move || r.get(key))
            })
            .collect();
        let models: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(r.miss_count(), 1, "one caller loads, the rest wait and hit");
        assert_eq!(r.hit_count(), 3);
        for m in &models[1..] {
            assert!(Arc::ptr_eq(&models[0], m), "all callers share one artifact");
        }
    }

    #[test]
    fn a_slow_load_does_not_block_gets_for_other_keys() {
        // Thread A encodes VGG-16 (the most layers); thread B's BERT get
        // must complete while A may still be loading — i.e. without ever
        // waiting on A. We can't control interleaving exactly, but both
        // finishing with two misses and no deadlock exercises the
        // in-flight path under concurrency.
        let r = std::sync::Arc::new(repo());
        let a = {
            let r = std::sync::Arc::clone(&r);
            std::thread::spawn(move || r.get(ModelKey::new(ModelId::Vgg16, None)))
        };
        let b = {
            let r = std::sync::Arc::clone(&r);
            std::thread::spawn(move || r.get(ModelKey::new(ModelId::BertBase, None)))
        };
        a.join().unwrap();
        b.join().unwrap();
        assert_eq!(r.miss_count(), 2);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn proxies_are_deterministic_across_repositories() {
        let key = ModelKey::new(ModelId::ResNet50, None);
        let a = repo().get(key);
        let b = repo().get(key);
        for (la, lb) in a.layers.iter().zip(&b.layers) {
            assert_eq!(la.weights.decode(), lb.weights.decode(), "{}", la.name);
        }
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn forward_rejects_wrong_width() {
        let r = repo();
        let m = r.get(ModelKey::new(ModelId::BertBase, None));
        let _ = m.forward(r.kernel(), &Matrix::zeros(2, 63));
    }

    #[test]
    #[should_panic(expected = "encoding spec does not match")]
    fn forward_rejects_a_foreign_kernel() {
        let r = repo();
        let m = r.get(ModelKey::new(ModelId::BertBase, None));
        let foreign = r.kernel_for(EncodingSpec::for_gpu(&GpuConfig::a100()));
        let _ = m.forward(&foreign, &Matrix::zeros(2, 64));
    }

    #[test]
    fn lru_evicts_past_the_entry_budget() {
        let r = repo().with_budget(CacheBudget { max_entries: 2, max_bytes: u64::MAX });
        let k1 = ModelKey::new(ModelId::RnnLm, Some(0.8));
        let k2 = ModelKey::new(ModelId::RnnLm, Some(0.9));
        let k3 = ModelKey::new(ModelId::RnnLm, Some(0.95));
        let _ = r.get(k1);
        let _ = r.get(k2);
        let _ = r.get(k1); // k1 is now more recently used than k2
        let _ = r.get(k3); // evicts k2
        assert_eq!(r.len(), 2);
        assert_eq!(r.counters().evictions, 1);
        let misses_before = r.miss_count();
        let _ = r.get(k1);
        let _ = r.get(k3);
        assert_eq!(r.miss_count(), misses_before, "survivors still hit");
        let _ = r.get(k2);
        assert_eq!(r.miss_count(), misses_before + 1, "the evicted key re-encodes");
    }

    #[test]
    fn byte_budget_bounds_the_cache_and_keeps_the_newest_entry() {
        // A budget below one artifact still keeps the latest insert alive.
        let r = repo().with_budget(CacheBudget { max_entries: usize::MAX, max_bytes: 1 });
        let m = r.get(ModelKey::new(ModelId::BertBase, None));
        assert_eq!(r.len(), 1);
        assert!(r.cached_bytes() >= m.encoded_bytes());
        let _ = r.get(ModelKey::new(ModelId::RnnLm, None));
        assert_eq!(r.len(), 1, "over-budget cache holds only the newest artifact");
        assert_eq!(r.counters().evictions, 1);
    }

    #[test]
    fn disk_store_round_trips_and_survives_a_restart() {
        let dir = TempDir::new("roundtrip");
        let key = ModelKey::new(ModelId::BertBase, Some(0.9));
        let cold = {
            let r = ModelRepository::new(GpuConfig::v100(), 32).with_disk_cache(dir.path());
            let m = r.get(key);
            assert!(!m.from_disk);
            assert_eq!(r.counters().fresh_encodes, 1);
            m
        };
        // "Restart": a fresh repository over the same directory.
        let r2 = ModelRepository::new(GpuConfig::v100(), 32).with_disk_cache(dir.path());
        let warm = r2.get(key);
        assert!(warm.from_disk, "second process restores from disk");
        let counters = r2.counters();
        assert_eq!(counters.disk_loads, 1);
        assert_eq!(counters.fresh_encodes, 0);
        assert!(counters.disk_load_ms >= 0.0);
        assert_eq!(warm.layers.len(), cold.layers.len());
        for (c, w) in cold.layers.iter().zip(&warm.layers) {
            assert_eq!(c.weights, w.weights, "{}", c.name);
            assert_eq!(c.name, w.name);
        }
        // The restored artifact serves identical outputs.
        let input = Matrix::random_sparse(2, 32, 0.4, dsstc_tensor::SparsityPattern::Uniform, 5);
        assert!(
            cold.forward(r2.kernel(), &input).approx_eq(&warm.forward(r2.kernel(), &input), 0.0),
            "bit-identical outputs"
        );
    }

    #[test]
    fn disk_artifacts_are_keyed_per_spec_and_proxy_dim() {
        let dir = TempDir::new("keys");
        let key = ModelKey::new(ModelId::RnnLm, Some(0.9));
        let r = ModelRepository::new(GpuConfig::v100(), 32).with_disk_cache(dir.path());
        let _ = r.get_for(key, EncodingSpec::for_gpu(&GpuConfig::v100()));
        let _ = r.get_for(key, EncodingSpec::for_gpu(&GpuConfig::a100()));
        // A different proxy width writes a third artifact.
        let r64 = ModelRepository::new(GpuConfig::v100(), 64).with_disk_cache(dir.path());
        let _ = r64.get(key);
        let files = artifact_names(dir.path());
        assert_eq!(files.len(), 3, "one artifact per (spec, proxy): {files:?}");
        assert!(files.iter().all(|f| f.starts_with("rnnlm-s0900")), "{files:?}");
        // The lifecycle bookkeeping rides along: a manifest tracks all
        // three artifacts.
        let entries = read_manifest(dir.path()).expect("manifest is present and verifies");
        assert_eq!(entries.len(), 3);
    }

    #[test]
    fn corrupt_or_stale_artifacts_fall_back_to_a_fresh_encode() {
        let dir = TempDir::new("corrupt");
        let key = ModelKey::new(ModelId::BertBase, None);
        {
            let r = ModelRepository::new(GpuConfig::v100(), 32).with_disk_cache(dir.path());
            let _ = r.get(key);
        }
        // Truncate the artifact to garbage.
        let file = dir.path().join(&artifact_names(dir.path())[0]);
        std::fs::write(&file, b"DSMRgarbage").unwrap();
        let r = ModelRepository::new(GpuConfig::v100(), 32).with_disk_cache(dir.path());
        let m = r.get(key);
        assert!(!m.from_disk, "corrupt artifact must not be served");
        let counters = r.counters();
        assert_eq!((counters.disk_loads, counters.fresh_encodes), (0, 1));
        // The fresh encode rewrote the artifact; a third repository warms.
        let r3 = ModelRepository::new(GpuConfig::v100(), 32).with_disk_cache(dir.path());
        assert!(r3.get(key).from_disk, "rewritten artifact restores cleanly");
    }

    /// Artifact filenames in `dir`, sorted (skips the manifest + lock).
    fn artifact_names(dir: &Path) -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|f| f.ends_with(".dsstc"))
            .collect();
        names.sort();
        names
    }

    #[test]
    fn parse_artifact_name_round_trips_every_model_and_sparsity() {
        let r = ModelRepository::new(GpuConfig::v100(), 32);
        let dir = PathBuf::from("/store");
        for model in ModelId::ALL {
            for sparsity in [None, Some(0.9)] {
                let key = ModelKey::new(model, sparsity);
                for gpu in [GpuConfig::v100(), GpuConfig::a100()] {
                    let spec = EncodingSpec::for_gpu(&gpu);
                    let path = r.artifact_path(&dir, key, spec);
                    let name = path.file_name().unwrap().to_str().unwrap();
                    let (parsed_key, dim, spec_id) =
                        parse_artifact_name(name).unwrap_or_else(|| panic!("parse {name}"));
                    assert_eq!(parsed_key, key, "{name}");
                    assert_eq!(dim, 32, "{name}");
                    assert_eq!(spec_id, spec.id(), "{name}");
                }
            }
        }
    }

    #[test]
    fn parse_artifact_name_rejects_malformed_names() {
        for name in [
            "",
            "MANIFEST.dsstcm",
            ".dsstc-store.lock",
            "rnnlm-s0900-d32",               // no suffix
            "nonesuch-s0900-d32-spec.dsstc", // unknown slug
            "rnnlm-x0900-d32-spec.dsstc",    // bad sparsity field
            "rnnlm-s1500-d32-spec.dsstc",    // sparsity over 1000 permille
            "rnnlm-s0900-32-spec.dsstc",     // bad dim field
            "rnnlm-s0900-d0-spec.dsstc",     // zero dim
            "rnnlm-s0900-d32-.dsstc",        // empty spec id
            "rnnlm-s0900.dsstc",             // too few fields
            "vgg16-table-dxx-spec.dsstc",    // non-numeric dim
        ] {
            assert!(parse_artifact_name(name).is_none(), "{name:?} must not parse");
        }
    }

    #[test]
    fn manifest_round_trips_and_detects_tampering() {
        let dir = TempDir::new("manifest");
        std::fs::create_dir_all(dir.path()).unwrap();
        let entries = vec![
            ManifestEntry {
                file: "a.dsstc".into(),
                bytes: 100,
                last_restore_us: 7,
                spec_id: "b128x128x16-w32x32x16-cm-rm".into(),
            },
            ManifestEntry {
                file: "b.dsstc".into(),
                bytes: 2,
                last_restore_us: 9,
                spec_id: "x".into(),
            },
        ];
        write_manifest(dir.path(), &entries).unwrap();
        assert_eq!(read_manifest(dir.path()).unwrap(), entries);
        // Flip one byte anywhere in the file: the checksum must catch it.
        let path = dir.path().join(MANIFEST_NAME);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_manifest(dir.path()).is_none(), "tampered manifest must not verify");
        // An empty manifest round-trips too.
        write_manifest(dir.path(), &[]).unwrap();
        assert_eq!(read_manifest(dir.path()).unwrap(), Vec::new());
    }

    #[test]
    fn a_missing_manifest_rebuilds_from_a_directory_scan() {
        let dir = TempDir::new("rebuild");
        let key = ModelKey::new(ModelId::RnnLm, Some(0.9));
        {
            let r = ModelRepository::new(GpuConfig::v100(), 32).with_disk_cache(dir.path());
            let _ = r.get(key);
        }
        std::fs::remove_file(dir.path().join(MANIFEST_NAME)).unwrap();
        let scanned = scan_store(dir.path());
        assert_eq!(scanned.len(), 1);
        assert_eq!(scanned[0].file, artifact_names(dir.path())[0]);
        assert!(scanned[0].bytes > 0);
        // warm_boot regenerates the manifest from the scan.
        let r = ModelRepository::new(GpuConfig::v100(), 32).with_disk_cache(dir.path());
        let report = r.warm_boot(&[EncodingSpec::for_gpu(&GpuConfig::v100())], 1);
        assert_eq!(report.restored, 1);
        assert_eq!(read_manifest(dir.path()).unwrap().len(), 1);
    }

    #[test]
    fn warm_boot_restores_artifacts_so_the_first_request_hits() {
        let dir = TempDir::new("warmboot");
        let spec = EncodingSpec::for_gpu(&GpuConfig::v100());
        let k1 = ModelKey::new(ModelId::RnnLm, Some(0.9));
        let k2 = ModelKey::new(ModelId::BertBase, None);
        {
            let r = ModelRepository::new(GpuConfig::v100(), 32).with_disk_cache(dir.path());
            let _ = r.get(k1);
            let _ = r.get(k2);
        }
        // "Restart": warm boot restores both artifacts into memory.
        let r = ModelRepository::new(GpuConfig::v100(), 32).with_disk_cache(dir.path());
        let report = r.warm_boot(&[spec], 2);
        assert_eq!(report.restored, 2);
        assert_eq!(report.warmed(), 2);
        assert_eq!((report.healed, report.reencoded, report.skipped), (0, 0, 0));
        assert!(report.elapsed_ms >= 0.0);
        let counters = r.counters();
        assert_eq!(counters.fresh_encodes, 0, "warm boot never re-encodes intact artifacts");
        assert_eq!(counters.disk_loads, 2);
        assert_eq!(counters.warm_restored, 2);
        assert_eq!(counters.store_entries, 2);
        assert!(counters.store_bytes > 0);
        // The first request after restart is a memory hit.
        let hits_before = r.hit_count();
        let m = r.get(k1);
        assert_eq!(r.hit_count(), hits_before + 1, "first request after warm boot hits");
        assert!(m.from_disk);
    }

    #[test]
    fn warm_boot_without_a_disk_tier_is_a_no_op() {
        let r = repo();
        let report = r.warm_boot(&[r.default_spec()], 4);
        assert_eq!(report, WarmBootReport { elapsed_ms: report.elapsed_ms, ..Default::default() });
        assert!(r.is_empty());
    }

    #[test]
    fn warm_boot_heals_a_corrupt_artifact_in_place() {
        let dir = TempDir::new("heal");
        let spec = EncodingSpec::for_gpu(&GpuConfig::v100());
        let key = ModelKey::new(ModelId::BertBase, None);
        {
            let r = ModelRepository::new(GpuConfig::v100(), 32).with_disk_cache(dir.path());
            let _ = r.get(key);
        }
        let file = dir.path().join(&artifact_names(dir.path())[0]);
        std::fs::write(&file, b"DSMR\x01\x00garbage").unwrap();
        let r = ModelRepository::new(GpuConfig::v100(), 32).with_disk_cache(dir.path());
        let report = r.warm_boot(&[spec], 1);
        assert_eq!((report.restored, report.healed), (0, 1));
        assert_eq!(r.counters().fresh_encodes, 1, "healing pays one fresh encode");
        // The rewrite is durable: a third repository restores cleanly.
        let r3 = ModelRepository::new(GpuConfig::v100(), 32).with_disk_cache(dir.path());
        assert!(r3.get(key).from_disk);
    }

    #[test]
    fn warm_boot_reencodes_stale_spec_artifacts_for_the_current_pool() {
        let dir = TempDir::new("respec");
        let a100 = EncodingSpec::for_gpu(&GpuConfig::a100());
        let v100 = EncodingSpec::for_gpu(&GpuConfig::v100());
        let key = ModelKey::new(ModelId::RnnLm, Some(0.9));
        {
            let r = ModelRepository::new(GpuConfig::v100(), 32).with_disk_cache(dir.path());
            let _ = r.get_for(key, a100);
        }
        // The pool changed: only V100 encodings are wanted now.
        let r = ModelRepository::new(GpuConfig::v100(), 32).with_disk_cache(dir.path());
        let report = r.warm_boot(&[v100], 1);
        assert_eq!(report.reencoded, 1);
        assert_eq!(report.restored, 0);
        let files = artifact_names(dir.path());
        assert_eq!(files.len(), 1, "stale artifact replaced, not accumulated: {files:?}");
        assert!(files[0].contains(&v100.id()), "{files:?}");
        // The re-encoded model is already resident: the next get hits.
        let hits_before = r.hit_count();
        let _ = r.get_for(key, v100);
        assert_eq!(r.hit_count(), hits_before + 1);
    }

    #[test]
    fn warm_boot_skips_artifacts_of_a_foreign_proxy_width() {
        let dir = TempDir::new("foreign");
        let spec = EncodingSpec::for_gpu(&GpuConfig::v100());
        let key = ModelKey::new(ModelId::RnnLm, None);
        {
            let r = ModelRepository::new(GpuConfig::v100(), 64).with_disk_cache(dir.path());
            let _ = r.get(key);
        }
        let r = ModelRepository::new(GpuConfig::v100(), 32).with_disk_cache(dir.path());
        let report = r.warm_boot(&[spec], 1);
        assert_eq!(report.skipped, 1);
        assert_eq!(report.warmed(), 0);
        assert!(r.is_empty(), "foreign-width artifacts are not loaded");
        assert_eq!(artifact_names(dir.path()).len(), 1, "and not deleted");
    }

    #[test]
    fn warm_boot_sweeps_temp_files_and_unparseable_names() {
        let dir = TempDir::new("sweep");
        let spec = EncodingSpec::for_gpu(&GpuConfig::v100());
        let key = ModelKey::new(ModelId::BertBase, None);
        {
            let r = ModelRepository::new(GpuConfig::v100(), 32).with_disk_cache(dir.path());
            let _ = r.get(key);
        }
        std::fs::write(dir.path().join("bertbase-table-d32-x.dsstc.tmp-99-0"), b"half").unwrap();
        std::fs::write(dir.path().join("nonesuch-s0900-d32-spec.dsstc"), b"junk").unwrap();
        let r = ModelRepository::new(GpuConfig::v100(), 32).with_disk_cache(dir.path());
        let report = r.warm_boot(&[spec], 1);
        assert_eq!(report.orphans_removed, 2);
        assert_eq!(report.restored, 1);
        assert_eq!(artifact_names(dir.path()).len(), 1, "only the real artifact survives");
        assert!(!dir.path().join("nonesuch-s0900-d32-spec.dsstc").exists());
    }

    #[test]
    fn gc_store_evicts_least_recently_restored_artifacts_past_the_budget() {
        let dir = TempDir::new("gc");
        let keys: Vec<ModelKey> = [800, 900, 950]
            .iter()
            .map(|&p| ModelKey::new(ModelId::RnnLm, Some(p as f64 / 1e3)))
            .collect();
        {
            let r = ModelRepository::new(GpuConfig::v100(), 32).with_disk_cache(dir.path());
            for &k in &keys {
                let _ = r.get(k);
            }
        }
        assert_eq!(artifact_names(dir.path()).len(), 3);
        // Budget of two entries: the oldest (s0800, persisted first) goes.
        let r = ModelRepository::new(GpuConfig::v100(), 32)
            .with_disk_cache(dir.path())
            .with_store_budget(CacheBudget { max_entries: 2, max_bytes: u64::MAX });
        let removed = r.gc_store();
        assert_eq!(removed, 1);
        let files = artifact_names(dir.path());
        assert_eq!(files.len(), 2);
        assert!(!files.iter().any(|f| f.contains("s0800")), "LRU artifact evicted: {files:?}");
        let (entries, bytes) = r.store_usage();
        assert_eq!(entries, 2);
        assert!(bytes > 0);
        assert_eq!(r.counters().store_gc_removed, 1);
    }

    #[test]
    fn gc_store_honours_the_byte_budget_but_keeps_at_least_one_artifact() {
        let dir = TempDir::new("gcbytes");
        {
            let r = ModelRepository::new(GpuConfig::v100(), 32).with_disk_cache(dir.path());
            let _ = r.get(ModelKey::new(ModelId::RnnLm, Some(0.8)));
            let _ = r.get(ModelKey::new(ModelId::RnnLm, Some(0.9)));
        }
        let r = ModelRepository::new(GpuConfig::v100(), 32)
            .with_disk_cache(dir.path())
            .with_store_budget(CacheBudget { max_entries: usize::MAX, max_bytes: 1 });
        assert_eq!(r.gc_store(), 1, "over a 1-byte budget, all but one artifact go");
        assert_eq!(artifact_names(dir.path()).len(), 1);
        assert!(!dir.path().join(MANIFEST_NAME).exists() || read_manifest(dir.path()).is_some());
    }

    #[test]
    fn restores_refresh_lru_order_in_the_store_manifest() {
        let dir = TempDir::new("lrutouch");
        let k1 = ModelKey::new(ModelId::RnnLm, Some(0.8));
        let k2 = ModelKey::new(ModelId::RnnLm, Some(0.9));
        {
            let r = ModelRepository::new(GpuConfig::v100(), 32).with_disk_cache(dir.path());
            let _ = r.get(k1);
            let _ = r.get(k2); // k2 persisted last: most recent so far
        }
        {
            // Restoring k1 makes it the most recently used on disk.
            let r = ModelRepository::new(GpuConfig::v100(), 32).with_disk_cache(dir.path());
            assert!(r.get(k1).from_disk);
        }
        let r = ModelRepository::new(GpuConfig::v100(), 32)
            .with_disk_cache(dir.path())
            .with_store_budget(CacheBudget { max_entries: 1, max_bytes: u64::MAX });
        assert_eq!(r.gc_store(), 1);
        let files = artifact_names(dir.path());
        assert!(files[0].contains("s0800"), "the freshly-restored artifact survives: {files:?}");
    }

    #[test]
    #[cfg(unix)]
    fn store_lock_excludes_a_second_holder() {
        let dir = TempDir::new("lock");
        std::fs::create_dir_all(dir.path()).unwrap();
        let first = store_lock::StoreLock::try_acquire(dir.path());
        assert!(first.is_some(), "uncontended lock acquires");
        // flock is per open-file-description, so a second handle in this
        // process stands in for a second server sharing the store.
        assert!(
            store_lock::StoreLock::try_acquire(dir.path()).is_none(),
            "held lock excludes a second holder"
        );
        drop(first);
        assert!(store_lock::StoreLock::try_acquire(dir.path()).is_some(), "drop releases");
    }

    #[test]
    fn fnv1a_matches_known_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"), "order-sensitive");
    }
}
