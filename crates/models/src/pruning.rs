//! Weight pruning schemes (paper Table II).
//!
//! * **AGP** (Automated Gradual Pruning, Zhu & Gupta): the cubic sparsity
//!   schedule used to prune the CNN and RNN models.
//! * **Magnitude pruning** to an exact target sparsity (the per-step action
//!   AGP takes, and a stand-in for movement pruning's final mask since only
//!   the resulting sparsity pattern matters to the accelerator).
//! * **N:M structured pruning** (2:4 Ampere-style, 8:32 vector-wise) used by
//!   the single-side baselines.

use dsstc_tensor::Matrix;

/// The AGP cubic sparsity schedule.
///
/// Between `begin_step` and `end_step` the target sparsity ramps from
/// `initial` to `final_sparsity` following
/// `s_t = s_f + (s_i - s_f) * (1 - (t - t0)/(t1 - t0))^3`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AgpSchedule {
    /// Sparsity at the start of pruning.
    pub initial: f64,
    /// Sparsity at the end of pruning.
    pub final_sparsity: f64,
    /// First pruning step.
    pub begin_step: u64,
    /// Last pruning step.
    pub end_step: u64,
}

impl AgpSchedule {
    /// Creates a schedule.
    ///
    /// # Panics
    /// Panics if the sparsities are outside `[0, 1]` or the step range is
    /// empty.
    pub fn new(initial: f64, final_sparsity: f64, begin_step: u64, end_step: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&initial) && (0.0..=1.0).contains(&final_sparsity),
            "sparsity must be in [0,1]"
        );
        assert!(end_step > begin_step, "end_step must be after begin_step");
        AgpSchedule { initial, final_sparsity, begin_step, end_step }
    }

    /// Target sparsity at training step `step`.
    pub fn sparsity_at(&self, step: u64) -> f64 {
        if step <= self.begin_step {
            return self.initial;
        }
        if step >= self.end_step {
            return self.final_sparsity;
        }
        let progress = (step - self.begin_step) as f64 / (self.end_step - self.begin_step) as f64;
        self.final_sparsity + (self.initial - self.final_sparsity) * (1.0 - progress).powi(3)
    }
}

/// Target sparsity of the default AGP schedule (initial 0, given final) at a
/// fractional training `progress` in `[0, 1]`.
pub fn agp_target_sparsity(final_sparsity: f64, progress: f64) -> f64 {
    let schedule = AgpSchedule::new(0.0, final_sparsity, 0, 1_000);
    schedule.sparsity_at((progress.clamp(0.0, 1.0) * 1_000.0) as u64)
}

/// Magnitude pruning: zeroes the smallest-magnitude weights until the matrix
/// reaches `target_sparsity`.
///
/// # Panics
/// Panics if `target_sparsity` is outside `[0, 1]`.
pub fn prune_magnitude(weights: &Matrix, target_sparsity: f64) -> Matrix {
    assert!((0.0..=1.0).contains(&target_sparsity), "sparsity must be in [0,1]");
    let total = weights.rows() * weights.cols();
    let prune_count = (total as f64 * target_sparsity).round() as usize;
    if prune_count == 0 {
        return weights.clone();
    }
    let mut magnitudes: Vec<f32> = weights.as_slice().iter().map(|x| x.abs()).collect();
    magnitudes.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let threshold = magnitudes[(prune_count - 1).min(total - 1)];
    let mut out = weights.clone();
    let mut pruned = 0usize;
    for v in out.as_mut_slice() {
        if pruned >= prune_count {
            break;
        }
        if v.abs() <= threshold {
            *v = 0.0;
            pruned += 1;
        }
    }
    out
}

/// N:M structured pruning: within every group of `m` consecutive row
/// elements only the `n` largest-magnitude values survive. `n = 2, m = 4`
/// gives Ampere's 2:4 pattern; `n = 8, m = 32` gives the vector-wise pattern
/// of the Sparse Tensor Core baseline.
///
/// # Panics
/// Panics if `m == 0` or `n > m`.
pub fn prune_n_of_m(weights: &Matrix, n: usize, m: usize) -> Matrix {
    assert!(m > 0 && n <= m, "invalid N:M pruning parameters");
    let mut out = Matrix::zeros(weights.rows(), weights.cols());
    for r in 0..weights.rows() {
        for g0 in (0..weights.cols()).step_by(m) {
            let glen = m.min(weights.cols() - g0);
            let gkeep = (n * glen).div_ceil(m).min(glen);
            let mut idx: Vec<usize> = (0..glen).collect();
            idx.sort_by(|&i, &j| {
                weights[(r, g0 + j)]
                    .abs()
                    .partial_cmp(&weights[(r, g0 + i)].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for &i in idx.iter().take(gkeep) {
                out[(r, g0 + i)] = weights[(r, g0 + i)];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsstc_tensor::SparsityPattern;

    #[test]
    fn agp_schedule_endpoints_and_monotonicity() {
        let s = AgpSchedule::new(0.0, 0.9, 100, 1100);
        assert_eq!(s.sparsity_at(0), 0.0);
        assert_eq!(s.sparsity_at(100), 0.0);
        assert_eq!(s.sparsity_at(1100), 0.9);
        assert_eq!(s.sparsity_at(5000), 0.9);
        let mut prev = 0.0;
        for step in (100..=1100).step_by(100) {
            let v = s.sparsity_at(step);
            assert!(v >= prev, "schedule must be non-decreasing");
            prev = v;
        }
    }

    #[test]
    fn agp_schedule_is_cubic_front_loaded() {
        // AGP prunes aggressively early: by half the schedule more than half
        // the final sparsity is reached.
        let s = AgpSchedule::new(0.0, 0.8, 0, 1000);
        assert!(s.sparsity_at(500) > 0.4 + 0.8 / 4.0);
        assert!((agp_target_sparsity(0.8, 0.5) - s.sparsity_at(500)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "end_step")]
    fn agp_invalid_steps_panic() {
        let _ = AgpSchedule::new(0.0, 0.5, 10, 10);
    }

    #[test]
    fn magnitude_pruning_hits_target_sparsity() {
        let w = Matrix::random_sparse(64, 64, 0.0, SparsityPattern::Uniform, 1);
        for &target in &[0.25, 0.5, 0.9] {
            let pruned = prune_magnitude(&w, target);
            assert!(
                (pruned.sparsity() - target).abs() < 0.02,
                "target {target}, got {}",
                pruned.sparsity()
            );
        }
    }

    #[test]
    fn magnitude_pruning_keeps_largest_values() {
        let w = Matrix::from_rows(&[&[0.1, -5.0, 0.2, 3.0]]);
        let pruned = prune_magnitude(&w, 0.5);
        assert_eq!(pruned.row(0), &[0.0, -5.0, 0.0, 3.0]);
    }

    #[test]
    fn magnitude_pruning_zero_target_is_identity() {
        let w = Matrix::random_sparse(16, 16, 0.3, SparsityPattern::Uniform, 2);
        assert_eq!(prune_magnitude(&w, 0.0), w);
    }

    #[test]
    fn two_of_four_pruning_structure() {
        let w = Matrix::random_sparse(16, 64, 0.0, SparsityPattern::Uniform, 3);
        let pruned = prune_n_of_m(&w, 2, 4);
        for r in 0..16 {
            for g0 in (0..64).step_by(4) {
                let nnz = (0..4).filter(|&i| pruned[(r, g0 + i)] != 0.0).count();
                assert!(nnz <= 2);
            }
        }
        assert!((pruned.sparsity() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn vector_wise_pruning_is_75_percent() {
        let w = Matrix::random_sparse(8, 128, 0.0, SparsityPattern::Uniform, 4);
        let pruned = prune_n_of_m(&w, 8, 32);
        assert!((pruned.sparsity() - 0.75).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid N:M")]
    fn invalid_n_of_m_panics() {
        let _ = prune_n_of_m(&Matrix::zeros(2, 2), 5, 4);
    }
}
