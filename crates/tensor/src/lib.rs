//! Dense matrix / tensor primitives for the dual-side sparse Tensor Core
//! reproduction.
//!
//! The crates above this one (formats, simulator, kernels) operate on plain
//! dense data produced here: row-major [`Matrix`] values, NCHW
//! [`FeatureMap`]s, IEEE-754 half-precision storage emulation ([`struct@f16`]), and
//! synthetic sparse data generators that mimic the weight/activation sparsity
//! distributions reported in the paper.
//!
//! # Example
//!
//! ```
//! use dsstc_tensor::{Matrix, SparsityPattern};
//!
//! // A 64x64 matrix with ~70% zeros, uniformly scattered.
//! let a = Matrix::random_sparse(64, 64, 0.7, SparsityPattern::Uniform, 42);
//! assert!((a.sparsity() - 0.7).abs() < 0.1);
//! ```

#![deny(missing_docs)]

pub mod half;
pub mod matrix;
pub mod random;
pub mod shape;
pub mod tensor4;

pub use crate::half::f16;
pub use crate::matrix::Matrix;
pub use crate::random::{RandomMatrixBuilder, SparsityPattern};
pub use crate::shape::{ConvShape, GemmShape};
pub use crate::tensor4::FeatureMap;

/// Relative/absolute tolerance used across the workspace when comparing
/// floating-point results produced via different accumulation orders
/// (outer-product vs inner-product GEMM).
pub const DEFAULT_TOLERANCE: f32 = 1e-3;

/// Returns `true` when two floats are equal within a combined
/// absolute/relative tolerance.
///
/// The comparison is symmetric in its arguments and treats two NaNs as
/// unequal (as IEEE does).
///
/// # Example
/// ```
/// assert!(dsstc_tensor::approx_eq(1.0, 1.0 + 1e-6, 1e-3));
/// assert!(!dsstc_tensor::approx_eq(1.0, 1.1, 1e-3));
/// ```
pub fn approx_eq(a: f32, b: f32, tol: f32) -> bool {
    if a == b {
        return true;
    }
    let diff = (a - b).abs();
    let scale = a.abs().max(b.abs()).max(1.0);
    diff <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_exact() {
        assert!(approx_eq(0.0, 0.0, 1e-6));
        assert!(approx_eq(1.5, 1.5, 0.0));
    }

    #[test]
    fn approx_eq_within_tolerance() {
        assert!(approx_eq(100.0, 100.05, 1e-3));
        assert!(!approx_eq(100.0, 101.0, 1e-3));
    }

    #[test]
    fn approx_eq_nan_is_unequal() {
        assert!(!approx_eq(f32::NAN, f32::NAN, 1e-3));
        assert!(!approx_eq(f32::NAN, 1.0, 1e-3));
    }

    #[test]
    fn approx_eq_small_values_use_absolute_tolerance() {
        assert!(approx_eq(1e-9, 2e-9, 1e-6));
    }
}
