//! Convolution drivers: the five schemes compared in Fig. 22 for CNN layers.
//!
//! A convolution layer is lowered to a GEMM via im2col; the scheme decides
//! which im2col (explicit/implicit, dense/bitmap) and which GEMM kernel
//! (dense, single-side sparse, dual-side sparse) are composed:
//!
//! | scheme | im2col | GEMM | exploits |
//! |---|---|---|---|
//! | `DenseExplicit` | dense, explicit | CUTLASS dense | nothing |
//! | `DenseImplicit` | dense, implicit (cuDNN) | CUTLASS dense | nothing |
//! | `SingleSparseExplicit` | dense, explicit | Sparse Tensor Core \[72\] | weight sparsity (fixed 75 %) |
//! | `SingleSparseImplicit` | bitmap, implicit | dual-side SpGEMM | weight sparsity |
//! | `DualSparseImplicit` | bitmap, implicit | dual-side SpGEMM | weight **and** activation sparsity |

use dsstc_sim::{GpuConfig, GpuTimingModel, WorkloadProfile};
use dsstc_tensor::{ConvShape, FeatureMap, GemmShape, Matrix};

use crate::bitmap_spgemm::{BitmapSpGemm, SyntheticGemmSpec};
use crate::dense_gemm::DenseGemm;
use crate::im2col::{flatten_weights, BitmapIm2col, DenseIm2col};
use crate::vector_sparse::VectorSparseGemm;

/// The convolution execution schemes of Fig. 22.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConvScheme {
    /// Explicit dense im2col followed by CUTLASS dense GEMM.
    DenseExplicit,
    /// cuDNN-style implicit dense im2col fused into a dense GEMM.
    DenseImplicit,
    /// Explicit dense im2col followed by the single-side Sparse Tensor Core.
    SingleSparseExplicit,
    /// Bitmap implicit im2col + dual-side SpGEMM, but only the weight side
    /// is sparse (activations treated dense).
    SingleSparseImplicit,
    /// Bitmap implicit im2col + dual-side SpGEMM on both sparse sides —
    /// the paper's full method.
    DualSparseImplicit,
}

impl ConvScheme {
    /// All five schemes in the order Fig. 22 plots them.
    pub const ALL: [ConvScheme; 5] = [
        ConvScheme::DenseExplicit,
        ConvScheme::DenseImplicit,
        ConvScheme::SingleSparseExplicit,
        ConvScheme::SingleSparseImplicit,
        ConvScheme::DualSparseImplicit,
    ];
}

impl std::fmt::Display for ConvScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ConvScheme::DenseExplicit => "Dense Explicit",
            ConvScheme::DenseImplicit => "Dense Implicit",
            ConvScheme::SingleSparseExplicit => "Single Sparse Explicit",
            ConvScheme::SingleSparseImplicit => "Single Sparse Implicit",
            ConvScheme::DualSparseImplicit => "Dual Sparse Implicit",
        };
        f.write_str(s)
    }
}

/// A convolution layer workload: its shape plus the measured sparsity of its
/// input feature map and pruned weights.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConvWorkload {
    /// Layer shape.
    pub shape: ConvShape,
    /// Fraction of zero activations in the input feature map.
    pub activation_sparsity: f64,
    /// Fraction of zero weights after pruning.
    pub weight_sparsity: f64,
}

impl ConvWorkload {
    /// Creates a workload.
    ///
    /// # Panics
    /// Panics if either sparsity is outside `[0, 1]`.
    pub fn new(shape: ConvShape, activation_sparsity: f64, weight_sparsity: f64) -> Self {
        assert!((0.0..=1.0).contains(&activation_sparsity), "activation sparsity must be in [0,1]");
        assert!((0.0..=1.0).contains(&weight_sparsity), "weight sparsity must be in [0,1]");
        ConvWorkload { shape, activation_sparsity, weight_sparsity }
    }

    /// The GEMM the layer lowers to.
    pub fn lowered_gemm(&self) -> GemmShape {
        self.shape.lowered_gemm()
    }
}

/// Byte footprints of the layer's operands under different encodings.
fn feature_map_bytes_dense(shape: &ConvShape) -> u64 {
    shape.input_elements() * 2
}

fn feature_map_bytes_bitmap(shape: &ConvShape, sparsity: f64) -> u64 {
    let elems = shape.input_elements();
    let nnz = (elems as f64 * (1.0 - sparsity)) as u64;
    nnz * 2 + elems.div_ceil(8) + (shape.c * shape.h) as u64 * 4
}

fn weight_bytes_dense(gemm: &GemmShape) -> u64 {
    (gemm.k * gemm.n) as u64 * 2
}

fn weight_bytes_bitmap(gemm: &GemmShape, sparsity: f64) -> u64 {
    let elems = (gemm.k * gemm.n) as u64;
    let nnz = (elems as f64 * (1.0 - sparsity)) as u64;
    nnz * 2 + elems.div_ceil(8)
}

/// Composes im2col and GEMM kernels into per-scheme convolution profiles.
#[derive(Clone, Debug)]
pub struct ConvKernel {
    config: GpuConfig,
}

impl ConvKernel {
    /// Creates the driver for the given GPU.
    pub fn new(config: GpuConfig) -> Self {
        ConvKernel { config }
    }

    /// The sequence of kernel launches (their profiles) the scheme needs for
    /// this layer. Explicit schemes run im2col as a separate kernel;
    /// implicit schemes fold it into the GEMM.
    pub fn profiles(&self, workload: &ConvWorkload, scheme: ConvScheme) -> Vec<WorkloadProfile> {
        let shape = &workload.shape;
        let gemm = workload.lowered_gemm();
        let dense_im2col = DenseIm2col::new();
        let seed = layer_seed(workload);
        match scheme {
            ConvScheme::DenseExplicit => {
                let im2col =
                    dense_im2col.explicit_cost(shape).into_profile("explicit-im2col", shape);
                // The GEMM reads the materialised lowered matrix (default
                // operand bytes of the dense profile).
                let gemm_profile = DenseGemm::new(self.config.clone()).profile(&gemm);
                vec![im2col, gemm_profile]
            }
            ConvScheme::DenseImplicit => {
                let mut gemm_profile = DenseGemm::new(self.config.clone())
                    .profile_with_operand_bytes(
                        &gemm,
                        feature_map_bytes_dense(shape),
                        weight_bytes_dense(&gemm),
                    );
                dense_im2col.implicit_cost(shape).fold_into(&mut gemm_profile);
                vec![gemm_profile]
            }
            ConvScheme::SingleSparseExplicit => {
                let im2col =
                    dense_im2col.explicit_cost(shape).into_profile("explicit-im2col", shape);
                let gemm_profile = VectorSparseGemm::new(self.config.clone())
                    .profile(&gemm, workload.weight_sparsity);
                vec![im2col, gemm_profile]
            }
            ConvScheme::SingleSparseImplicit | ConvScheme::DualSparseImplicit => {
                let activation_sparsity = if scheme == ConvScheme::DualSparseImplicit {
                    workload.activation_sparsity
                } else {
                    0.0
                };
                let a_bytes = feature_map_bytes_bitmap(shape, activation_sparsity);
                let b_bytes = weight_bytes_bitmap(&gemm, workload.weight_sparsity);
                let spec = SyntheticGemmSpec::oriented(
                    gemm,
                    activation_sparsity,
                    workload.weight_sparsity,
                    Some(a_bytes),
                    Some(b_bytes),
                    seed,
                );
                let (mut gemm_profile, _) =
                    BitmapSpGemm::new(self.config.clone()).profile_synthetic(&spec);
                // Implicit bitmap im2col is fused into the GEMM main loop.
                let encoded_cost_input =
                    FeatureMapCostProxy { sparsity: activation_sparsity, shape: *shape };
                encoded_cost_input.implicit_cost().fold_into(&mut gemm_profile);
                vec![gemm_profile]
            }
        }
    }

    /// Modelled execution time of the layer under the scheme, in µs.
    pub fn estimate_us(
        &self,
        model: &GpuTimingModel,
        workload: &ConvWorkload,
        scheme: ConvScheme,
    ) -> f64 {
        model.estimate_sequence(&self.profiles(workload, scheme))
    }

    /// Functional dual-side sparse convolution: bitmap im2col of the input
    /// feature map, bitmap SpGEMM against the flattened weights, output
    /// returned as a `out_h*out_w x N` matrix (row = output pixel).
    ///
    /// # Panics
    /// Panics if the weights do not match the shape.
    pub fn execute_dual_sparse(
        &self,
        input: &FeatureMap,
        weights: &[FeatureMap],
        shape: &ConvShape,
    ) -> (Matrix, WorkloadProfile) {
        let im2col = BitmapIm2col::new();
        let lowered = im2col.lower(&im2col.encode(input), shape);
        let flat_weights = flatten_weights(weights, shape);
        BitmapSpGemm::new(self.config.clone()).execute(&lowered, &flat_weights)
    }
}

/// Cost proxy for the implicit bitmap im2col when only the sparsity ratio
/// (not the actual feature map) is known.
struct FeatureMapCostProxy {
    sparsity: f64,
    shape: ConvShape,
}

impl FeatureMapCostProxy {
    fn implicit_cost(&self) -> crate::im2col::Im2colCost {
        let lowered = self.shape.lowered_elements();
        let lowered_words = lowered.div_ceil(32);
        let touched_nnz = (lowered as f64 * (1.0 - self.sparsity)) as u64;
        crate::im2col::Im2colCost {
            scalar_ops: lowered_words * 3 + touched_nnz,
            popc_ops: lowered_words,
            dram_bytes_read: 0,
            dram_bytes_written: 0,
        }
    }
}

/// Deterministic per-layer seed so repeated estimates are reproducible.
fn layer_seed(workload: &ConvWorkload) -> u64 {
    let s = &workload.shape;
    (s.h as u64)
        .wrapping_mul(31)
        .wrapping_add(s.w as u64)
        .wrapping_mul(31)
        .wrapping_add(s.c as u64)
        .wrapping_mul(31)
        .wrapping_add(s.n as u64)
        .wrapping_mul(31)
        .wrapping_add(s.k as u64)
        .wrapping_mul(31)
        .wrapping_add((workload.activation_sparsity * 1000.0) as u64)
        .wrapping_mul(31)
        .wrapping_add((workload.weight_sparsity * 1000.0) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsstc_sim::GpuTimingModel;

    fn resnet_layer() -> ConvWorkload {
        // The ResNet-18 layer used in Table III: 56x56, 3x3, 128 -> 128.
        ConvWorkload::new(ConvShape::square(56, 128, 128, 3, 1, 1), 0.6, 0.8)
    }

    fn driver() -> ConvKernel {
        ConvKernel::new(GpuConfig::v100())
    }

    #[test]
    fn explicit_schemes_launch_two_kernels_implicit_one() {
        let w = resnet_layer();
        let d = driver();
        assert_eq!(d.profiles(&w, ConvScheme::DenseExplicit).len(), 2);
        assert_eq!(d.profiles(&w, ConvScheme::SingleSparseExplicit).len(), 2);
        assert_eq!(d.profiles(&w, ConvScheme::DenseImplicit).len(), 1);
        assert_eq!(d.profiles(&w, ConvScheme::SingleSparseImplicit).len(), 1);
        assert_eq!(d.profiles(&w, ConvScheme::DualSparseImplicit).len(), 1);
    }

    #[test]
    fn dense_implicit_beats_dense_explicit() {
        let model = GpuTimingModel::v100();
        let w = resnet_layer();
        let d = driver();
        let explicit = d.estimate_us(&model, &w, ConvScheme::DenseExplicit);
        let implicit = d.estimate_us(&model, &w, ConvScheme::DenseImplicit);
        assert!(implicit < explicit, "implicit {implicit} vs explicit {explicit}");
    }

    #[test]
    fn dual_sparse_implicit_is_fastest_scheme_on_a_sparse_layer() {
        let model = GpuTimingModel::v100();
        let w = resnet_layer();
        let d = driver();
        let times: Vec<f64> =
            ConvScheme::ALL.iter().map(|&s| d.estimate_us(&model, &w, s)).collect();
        let dual = times[4];
        for (i, &t) in times.iter().enumerate().take(4) {
            assert!(dual <= t, "dual ({dual}) should beat {} ({t})", ConvScheme::ALL[i]);
        }
    }

    #[test]
    fn dual_sparse_beats_single_sparse_when_activations_are_sparse() {
        let model = GpuTimingModel::v100();
        let d = driver();
        let w = ConvWorkload::new(ConvShape::square(28, 256, 256, 3, 1, 1), 0.7, 0.7);
        let single = d.estimate_us(&model, &w, ConvScheme::SingleSparseImplicit);
        let dual = d.estimate_us(&model, &w, ConvScheme::DualSparseImplicit);
        assert!(dual < single, "dual {dual} vs single {single}");
    }

    #[test]
    fn dense_activations_make_single_and_dual_equivalent() {
        let model = GpuTimingModel::v100();
        let d = driver();
        let w = ConvWorkload::new(ConvShape::square(28, 64, 64, 3, 1, 1), 0.0, 0.8);
        let single = d.estimate_us(&model, &w, ConvScheme::SingleSparseImplicit);
        let dual = d.estimate_us(&model, &w, ConvScheme::DualSparseImplicit);
        let ratio = dual / single;
        assert!((0.9..=1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn execute_dual_sparse_matches_direct_convolution() {
        let shape = ConvShape::square(8, 3, 4, 3, 1, 1);
        let input = FeatureMap::random_sparse(&shape, 0.5, 31);
        let weights: Vec<FeatureMap> = (0..shape.n)
            .map(|n| {
                let mut w = FeatureMap::zeros(shape.c, shape.k, shape.k);
                for c in 0..shape.c {
                    for ky in 0..shape.k {
                        for kx in 0..shape.k {
                            // A mix of zeros and non-zeros.
                            let v = ((n * 7 + c * 5 + ky * 3 + kx) % 5) as f32 - 2.0;
                            w.set(c, ky, kx, v);
                        }
                    }
                }
                w
            })
            .collect();
        let (out, _) = driver().execute_dual_sparse(&input, &weights, &shape);
        let reference = input.conv2d_reference(&weights, &shape);
        for n in 0..shape.n {
            for oy in 0..shape.out_h() {
                for ox in 0..shape.out_w() {
                    let got = out[(oy * shape.out_w() + ox, n)];
                    let expect = reference.get(n, oy, ox);
                    assert!(
                        (got - expect).abs() < 1e-2,
                        "n={n} oy={oy} ox={ox}: {got} vs {expect}"
                    );
                }
            }
        }
    }

    #[test]
    fn scheme_display_names() {
        assert_eq!(ConvScheme::DualSparseImplicit.to_string(), "Dual Sparse Implicit");
        assert_eq!(ConvScheme::ALL.len(), 5);
    }

    #[test]
    #[should_panic(expected = "activation sparsity")]
    fn invalid_sparsity_panics() {
        let _ = ConvWorkload::new(ConvShape::square(8, 1, 1, 3, 1, 1), 1.5, 0.0);
    }
}
