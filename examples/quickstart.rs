//! Quickstart: run one dual-side sparse GEMM, inspect its speedup, and look
//! at the machine instructions one warp issues for a sparse SpWMMA set.
//!
//! Run with `cargo run --release -p dsstc --example quickstart`.

use dsstc::DualSideSparseTensorCore;
use dsstc_sim::{OtcConfig, SpWmmaSet};
use dsstc_tensor::{Matrix, SparsityPattern};

fn main() {
    let dsstc = DualSideSparseTensorCore::v100();

    // A sparse activation matrix (70% zeros, as a ReLU layer would produce)
    // and an AGP-pruned weight matrix (85% zeros).
    let activations = Matrix::random_sparse(512, 512, 0.70, SparsityPattern::Uniform, 1);
    let weights = Matrix::random_sparse(512, 512, 0.85, SparsityPattern::Uniform, 2);

    let result = dsstc.spgemm(&activations, &weights);
    let reference = activations.matmul(&weights);
    println!("== Dual-side sparse GEMM (512x512x512) ==");
    println!("result matches the dense reference: {}", result.output.approx_eq(&reference, 1e-2));
    println!("modelled time:        {:>8.2} us", result.time_us);
    println!("dense Tensor Core:    {:>8.2} us", result.dense_time_us);
    println!("speedup:              {:>8.2}x", result.speedup_over_dense);
    println!();

    // The ISA-level view of one 32x32x1 SpWMMA set: POPC results of 20 (A)
    // and 11 (B) non-zeros let the hardware skip 5 of the 8 OHMMAs
    // (paper Fig. 5 / Fig. 15).
    let set = SpWmmaSet::expand(20, 11, 32, &OtcConfig::paper());
    println!("== Machine instructions for one sparse SpWMMA set (a_nnz=20, b_nnz=11) ==");
    for instruction in &set.instructions {
        println!("  {instruction}");
    }
    println!("issued: {}, OHMMAs skipped: {}", set.issued(), set.skipped_ohmma());
    println!();

    // Hardware cost of the extension (Table IV).
    let overhead = dsstc.hardware_overhead();
    println!("== Hardware overhead ==");
    println!(
        "total: {:.2} mm^2 ({:.1}% of the V100 die), {:.2} W ({:.1}% of TDP)",
        overhead.total().area_mm2,
        100.0 * overhead.area_fraction_of_v100(),
        overhead.total().power_w,
        100.0 * overhead.power_fraction_of_v100()
    );
}
