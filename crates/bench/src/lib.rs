//! Shared helpers for the table/figure harness binaries and Criterion
//! benches.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper:
//!
//! | binary | artifact |
//! |---|---|
//! | `table3_im2col` | Table III — im2col encoding comparison |
//! | `fig21_spgemm` | Figure 21 — SpGEMM sparsity sweep |
//! | `fig22_models` | Figure 22 — layer-wise model-inference speedups |
//! | `table4_overhead` | Table IV — hardware area/power overhead |

#![deny(missing_docs)]

use std::time::Instant;

/// Measures the wall-clock time of `f` in milliseconds, repeating it
/// `repeats` times and returning the minimum (the standard way to suppress
/// noise in micro-benchmarks run outside Criterion).
pub fn time_min_ms<F: FnMut()>(repeats: usize, mut f: F) -> f64 {
    assert!(repeats > 0, "at least one repeat is required");
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Formats a row of right-aligned cells for the plain-text tables the
/// harness binaries print.
pub fn format_row(label: &str, cells: &[String], width: usize) -> String {
    let mut out = format!("{label:<26}");
    for c in cells {
        out.push_str(&format!("{c:>width$}"));
    }
    out
}

/// The sparsity grid used by the Table III and Figure 21 sweeps.
pub fn sparsity_grid() -> Vec<f64> {
    vec![0.0, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_min_ms_returns_positive_duration() {
        let ms = time_min_ms(3, || {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i);
            }
            std::hint::black_box(acc);
        });
        assert!(ms >= 0.0);
        assert!(ms.is_finite());
    }

    #[test]
    #[should_panic(expected = "at least one repeat")]
    fn zero_repeats_panics() {
        let _ = time_min_ms(0, || {});
    }

    #[test]
    fn format_row_aligns_cells() {
        let row = format_row("label", &["1.0".to_string(), "2.0".to_string()], 8);
        assert!(row.starts_with("label"));
        assert!(row.ends_with("     2.0"));
    }

    #[test]
    fn sparsity_grid_is_sorted_and_in_range() {
        let grid = sparsity_grid();
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
        assert!(grid.iter().all(|&s| (0.0..1.0).contains(&s)));
    }
}
