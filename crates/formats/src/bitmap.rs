//! The bitmap two-tuple encoding `(bitmap, condensed values)`.
//!
//! This is the paper's core sparse format (Fig. 2b): the bitmap carries the
//! positions of non-zeros, and the value array stores only the non-zeros in
//! *condensed* order — column-major for an outer-product A operand (each
//! column's non-zeros pushed to the top, Fig. 4c) and row-major for a B
//! operand (each row's non-zeros pushed to the left).

use dsstc_tensor::{f16, Matrix};

use crate::bit_matrix::BitMatrix;
use crate::StorageFootprint;

/// Smallest magnitude that survives this workspace's FP16 rounding: 2^-24
/// (`0x3380_0000` as `f32` bits). `f16::from_f32` flushes any |x| < 2^-24
/// straight to signed zero — its subnormal path never rounds [2^-25, 2^-24)
/// up — so "rounds to a non-zero" is a single threshold compare.
const F16_MIN_MAGNITUDE: f32 = 5.960_464_5e-8;

/// Whether `x` is still a non-zero after FP16 rounding, without performing
/// the rounding. Written as a negated compare so NaN (which `f16::round_f32`
/// preserves) counts as significant, matching `x != 0.0` on the rounded
/// value.
#[inline]
#[allow(clippy::neg_cmp_op_on_partial_ord)] // `>=` would drop NaN; the negation keeps it
fn survives_f16(x: f32) -> bool {
    !(x.abs() < F16_MIN_MAGNITUDE)
}

/// Which axis the condensed value vectors run along.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VectorLayout {
    /// Values stored column by column — the A operand of an outer product
    /// (each outer-product step consumes one column of A).
    ColumnMajor,
    /// Values stored row by row — the B operand of an outer product.
    RowMajor,
}

/// A sparse matrix in bitmap encoding.
///
/// # Example
/// ```
/// use dsstc_tensor::Matrix;
/// use dsstc_formats::{BitmapMatrix, VectorLayout};
///
/// let dense = Matrix::from_rows(&[&[0.0, 2.0], &[3.0, 0.0]]);
/// let a = BitmapMatrix::encode(&dense, VectorLayout::ColumnMajor);
/// // Column 0 holds [3.0], column 1 holds [2.0].
/// assert_eq!(a.vector_values(0), &[3.0]);
/// assert_eq!(a.vector_values(1), &[2.0]);
/// assert_eq!(a.decode(), dense);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct BitmapMatrix {
    rows: usize,
    cols: usize,
    layout: VectorLayout,
    bitmap: BitMatrix,
    /// Non-zero values in condensed layout order.
    values: Vec<f32>,
    /// Start offset of each condensed vector in `values`; length is
    /// `cols + 1` for column-major and `rows + 1` for row-major.
    offsets: Vec<usize>,
}

impl BitmapMatrix {
    /// Encodes a dense matrix.
    pub fn encode(dense: &Matrix, layout: VectorLayout) -> Self {
        let bitmap = BitMatrix::from_matrix(dense);
        let (rows, cols) = (dense.rows(), dense.cols());
        let vector_count = match layout {
            VectorLayout::ColumnMajor => cols,
            VectorLayout::RowMajor => rows,
        };
        let mut values = Vec::with_capacity(bitmap.count_ones());
        let mut offsets = Vec::with_capacity(vector_count + 1);
        offsets.push(0);
        let data = dense.as_slice();
        for v in 0..vector_count {
            match layout {
                VectorLayout::ColumnMajor => {
                    for r in 0..rows {
                        let x = data[r * cols + v];
                        if x != 0.0 {
                            values.push(x);
                        }
                    }
                }
                VectorLayout::RowMajor => {
                    for &x in &data[v * cols..(v + 1) * cols] {
                        if x != 0.0 {
                            values.push(x);
                        }
                    }
                }
            }
            offsets.push(values.len());
        }
        BitmapMatrix { rows, cols, layout, bitmap, values, offsets }
    }

    /// Encodes the `tile_rows x tile_cols` window of `parent` whose top-left
    /// corner is `(row0, col0)`, zero-padded past the edges — identical to
    /// `encode(&parent.tile(..), layout)` but without materialising the
    /// dense tile, which is what keeps the two-level encoder off the
    /// allocator in the per-request serve hot path.
    pub(crate) fn encode_tile(
        parent: &Matrix,
        row0: usize,
        col0: usize,
        tile_rows: usize,
        tile_cols: usize,
        layout: VectorLayout,
    ) -> Self {
        Self::encode_tile_impl::<false>(parent, row0, col0, tile_rows, tile_cols, layout)
    }

    /// [`Self::encode_tile`] with FP16 rounding fused in: the bitmap keeps
    /// only elements that survive FP16 rounding, and the condensed values are
    /// stored rounded. Identical to `encode_tile(&parent.to_f16_precision()
    /// window)` but the threshold test replaces a full rounding pass — only
    /// the ~nnz kept values pay `f16::round_f32`.
    pub(crate) fn encode_tile_f16(
        parent: &Matrix,
        row0: usize,
        col0: usize,
        tile_rows: usize,
        tile_cols: usize,
        layout: VectorLayout,
    ) -> Self {
        Self::encode_tile_impl::<true>(parent, row0, col0, tile_rows, tile_cols, layout)
    }

    fn encode_tile_impl<const ROUND_F16: bool>(
        parent: &Matrix,
        row0: usize,
        col0: usize,
        tile_rows: usize,
        tile_cols: usize,
        layout: VectorLayout,
    ) -> Self {
        let keep = |x: f32| if ROUND_F16 { survives_f16(x) } else { x != 0.0 };
        let store = |x: f32| if ROUND_F16 { f16::round_f32(x) } else { x };
        let copy_rows = tile_rows.min(parent.rows().saturating_sub(row0));
        let copy_cols = tile_cols.min(parent.cols().saturating_sub(col0));
        let mut bitmap = BitMatrix::new(tile_rows, tile_cols);
        for r in 0..copy_rows {
            bitmap.fill_row_mask_with(r, &parent.row(row0 + r)[col0..col0 + copy_cols], keep);
        }
        let nnz = bitmap.count_ones();
        match layout {
            VectorLayout::RowMajor => {
                // Row vectors read straight off the parent's row slices.
                let mut values = Vec::with_capacity(nnz);
                let mut offsets = Vec::with_capacity(tile_rows + 1);
                offsets.push(0);
                for v in 0..tile_rows {
                    if v < copy_rows {
                        for &x in &parent.row(row0 + v)[col0..col0 + copy_cols] {
                            if keep(x) {
                                values.push(store(x));
                            }
                        }
                    }
                    offsets.push(values.len());
                }
                BitmapMatrix { rows: tile_rows, cols: tile_cols, layout, bitmap, values, offsets }
            }
            VectorLayout::ColumnMajor => {
                // Column vectors would read the parent with a `tile_cols`
                // stride per element; count-then-scatter keeps both passes
                // walking the rows sequentially instead.
                let mut offsets = vec![0usize; tile_cols + 1];
                for r in 0..copy_rows {
                    for (c, &x) in parent.row(row0 + r)[col0..col0 + copy_cols].iter().enumerate() {
                        offsets[c + 1] += usize::from(keep(x));
                    }
                }
                for c in 0..tile_cols {
                    offsets[c + 1] += offsets[c];
                }
                let mut values = vec![0.0f32; nnz];
                let mut cursors = offsets[..tile_cols].to_vec();
                for r in 0..copy_rows {
                    for (c, &x) in parent.row(row0 + r)[col0..col0 + copy_cols].iter().enumerate() {
                        if keep(x) {
                            values[cursors[c]] = store(x);
                            cursors[c] += 1;
                        }
                    }
                }
                BitmapMatrix { rows: tile_rows, cols: tile_cols, layout, bitmap, values, offsets }
            }
        }
    }

    /// Number of rows of the logical (dense) matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the logical (dense) matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The condensed-vector layout.
    pub fn layout(&self) -> VectorLayout {
        self.layout
    }

    /// The position bitmap.
    pub fn bitmap(&self) -> &BitMatrix {
        &self.bitmap
    }

    /// Total number of non-zero values.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of zero elements.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// Number of condensed vectors (columns for column-major, rows for
    /// row-major).
    pub fn vector_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The condensed non-zero values of vector `v` (column `v` or row `v`
    /// depending on layout).
    ///
    /// # Panics
    /// Panics if `v >= vector_count()`.
    pub fn vector_values(&self, v: usize) -> &[f32] {
        assert!(v < self.vector_count(), "vector index out of bounds");
        &self.values[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Number of non-zeros in vector `v` — what a `POPC` over that vector's
    /// bitmap returns.
    pub fn vector_nnz(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The bit pattern of vector `v` as booleans (length `rows` for
    /// column-major, `cols` for row-major).
    pub fn vector_bits(&self, v: usize) -> Vec<bool> {
        assert!(v < self.vector_count(), "vector index out of bounds");
        match self.layout {
            VectorLayout::ColumnMajor => (0..self.rows).map(|r| self.bitmap.get(r, v)).collect(),
            VectorLayout::RowMajor => (0..self.cols).map(|c| self.bitmap.get(v, c)).collect(),
        }
    }

    /// The bit pattern of vector `v` packed into a single `u64` (bit `i` set
    /// iff position `i` of the vector is a non-zero). This is the
    /// word-parallel sibling of [`Self::vector_bits`]: a step's A-column and
    /// B-row words feed the bitmap AND + `count_ones` gather of the
    /// functional SpGEMM without materialising positions.
    ///
    /// # Panics
    /// Panics if `v >= vector_count()` or the vector is longer than 64
    /// elements (tile encodings of warp tilings up to 64x64 always fit).
    pub fn vector_word(&self, v: usize) -> u64 {
        assert!(v < self.vector_count(), "vector index out of bounds");
        match self.layout {
            VectorLayout::ColumnMajor => self.bitmap.col_word(v),
            VectorLayout::RowMajor => self.bitmap.row_word(v),
        }
    }

    /// The dense positions (row indices for column-major, column indices for
    /// row-major) of vector `v`'s non-zeros, in the same order as
    /// [`Self::vector_values`].
    pub fn vector_positions(&self, v: usize) -> Vec<usize> {
        assert!(v < self.vector_count(), "vector index out of bounds");
        match self.layout {
            VectorLayout::ColumnMajor => self.bitmap.col_set_bits(v),
            VectorLayout::RowMajor => self.bitmap.row_set_bits(v),
        }
    }

    /// All non-zero values in condensed order.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Reads the logical element `(row, col)` (zero when the bit is clear).
    ///
    /// # Panics
    /// Panics when out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        if !self.bitmap.get(row, col) {
            return 0.0;
        }
        match self.layout {
            VectorLayout::ColumnMajor => {
                // Rank of `row` within column `col`.
                let rank = (0..row).filter(|&r| self.bitmap.get(r, col)).count();
                self.values[self.offsets[col] + rank]
            }
            VectorLayout::RowMajor => {
                let rank = self.bitmap.rank(row, col);
                self.values[self.offsets[row] + rank]
            }
        }
    }

    /// Reconstructs the dense matrix.
    pub fn decode(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for v in 0..self.vector_count() {
            let positions = self.vector_positions(v);
            let values = self.vector_values(v);
            for (&p, &x) in positions.iter().zip(values) {
                match self.layout {
                    VectorLayout::ColumnMajor => m[(p, v)] = x,
                    VectorLayout::RowMajor => m[(v, p)] = x,
                }
            }
        }
        m
    }

    /// Storage footprint: 2 bytes per FP16 value plus the packed bitmap.
    pub fn storage(&self) -> StorageFootprint {
        StorageFootprint {
            value_bytes: self.nnz() as u64 * 2,
            metadata_bytes: self.bitmap.storage_bytes(),
        }
    }

    /// Rebuilds an encoding from a bitmap and the condensed values (the
    /// serialiser's constructor). The per-vector offsets are recomputed from
    /// the bitmap; fails if the value count disagrees with the bitmap's
    /// population count.
    pub(crate) fn from_parts(
        layout: VectorLayout,
        bitmap: BitMatrix,
        values: Vec<f32>,
    ) -> Result<Self, &'static str> {
        if bitmap.count_ones() != values.len() {
            return Err("condensed value count does not match the bitmap population");
        }
        let (rows, cols) = (bitmap.rows(), bitmap.cols());
        let vector_count = match layout {
            VectorLayout::ColumnMajor => cols,
            VectorLayout::RowMajor => rows,
        };
        let mut offsets = Vec::with_capacity(vector_count + 1);
        offsets.push(0);
        let mut total = 0usize;
        for v in 0..vector_count {
            total += match layout {
                VectorLayout::ColumnMajor => bitmap.col_count_ones(v),
                VectorLayout::RowMajor => bitmap.row_count_ones(v),
            };
            offsets.push(total);
        }
        Ok(BitmapMatrix { rows, cols, layout, bitmap, values, offsets })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsstc_tensor::SparsityPattern;

    fn paper_matrix_a() -> Matrix {
        // The 6x6 sparse matrix A from paper Fig. 2b (values 1..9, letters
        // replaced by numbers): non-zeros at the positions of the bitmap.
        Matrix::from_rows(&[
            &[0.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            &[0.0, 2.0, 0.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 3.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 4.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 5.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 6.0, 0.0, 0.0],
        ])
    }

    #[test]
    fn encode_decode_roundtrip_column_major() {
        let dense = Matrix::random_sparse(37, 53, 0.8, SparsityPattern::Uniform, 11);
        let enc = BitmapMatrix::encode(&dense, VectorLayout::ColumnMajor);
        assert_eq!(enc.decode(), dense);
        assert_eq!(enc.nnz(), dense.nnz());
    }

    #[test]
    fn encode_decode_roundtrip_row_major() {
        let dense = Matrix::random_sparse(53, 37, 0.9, SparsityPattern::Uniform, 12);
        let enc = BitmapMatrix::encode(&dense, VectorLayout::RowMajor);
        assert_eq!(enc.decode(), dense);
    }

    #[test]
    fn column_major_vectors_are_condensed_columns() {
        let a = paper_matrix_a();
        let enc = BitmapMatrix::encode(&a, VectorLayout::ColumnMajor);
        assert_eq!(enc.vector_count(), 6);
        assert_eq!(enc.vector_values(1), &[1.0, 2.0]);
        assert_eq!(enc.vector_values(3), &[3.0, 4.0, 5.0, 6.0]);
        assert!(enc.vector_values(0).is_empty());
        assert_eq!(enc.vector_nnz(3), 4);
        assert_eq!(enc.vector_positions(3), vec![2, 3, 4, 5]);
    }

    #[test]
    fn row_major_vectors_are_condensed_rows() {
        let b = Matrix::from_rows(&[
            &[0.0, 7.0, 8.0, 0.0],
            &[0.0, 0.0, 0.0, 0.0],
            &[9.0, 0.0, 0.0, 1.5],
        ]);
        let enc = BitmapMatrix::encode(&b, VectorLayout::RowMajor);
        assert_eq!(enc.vector_values(0), &[7.0, 8.0]);
        assert!(enc.vector_values(1).is_empty());
        assert_eq!(enc.vector_values(2), &[9.0, 1.5]);
        assert_eq!(enc.vector_positions(2), vec![0, 3]);
        assert_eq!(enc.vector_bits(0), vec![false, true, true, false]);
    }

    #[test]
    fn vector_word_agrees_with_vector_bits_in_both_layouts() {
        let dense = Matrix::random_sparse(32, 16, 0.55, SparsityPattern::Uniform, 23);
        for layout in [VectorLayout::ColumnMajor, VectorLayout::RowMajor] {
            let enc = BitmapMatrix::encode(&dense, layout);
            for v in 0..enc.vector_count() {
                let word = enc.vector_word(v);
                let bits = enc.vector_bits(v);
                for (i, &bit) in bits.iter().enumerate() {
                    assert_eq!((word >> i) & 1 == 1, bit, "vector {v} bit {i} ({layout:?})");
                }
                assert_eq!(word.count_ones() as usize, enc.vector_nnz(v));
            }
        }
    }

    #[test]
    fn get_matches_dense_elementwise() {
        let dense = Matrix::random_sparse(20, 24, 0.6, SparsityPattern::Uniform, 4);
        for layout in [VectorLayout::ColumnMajor, VectorLayout::RowMajor] {
            let enc = BitmapMatrix::encode(&dense, layout);
            for r in 0..dense.rows() {
                for c in 0..dense.cols() {
                    assert_eq!(enc.get(r, c), dense[(r, c)], "({r},{c}) layout {layout:?}");
                }
            }
        }
    }

    #[test]
    fn sparsity_reported() {
        let dense = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        let enc = BitmapMatrix::encode(&dense, VectorLayout::ColumnMajor);
        assert!((enc.sparsity() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn fully_dense_and_fully_empty() {
        let dense = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let enc = BitmapMatrix::encode(&dense, VectorLayout::ColumnMajor);
        assert_eq!(enc.nnz(), 4);
        assert_eq!(enc.vector_values(0), &[1.0, 3.0]);

        let empty = Matrix::zeros(4, 4);
        let enc = BitmapMatrix::encode(&empty, VectorLayout::RowMajor);
        assert_eq!(enc.nnz(), 0);
        assert_eq!(enc.decode(), empty);
    }

    #[test]
    fn f16_survival_threshold_agrees_with_the_rounding_impl() {
        assert_eq!(F16_MIN_MAGNITUDE.to_bits(), 0x3380_0000, "threshold must be exactly 2^-24");
        let tiny = 2.0f32.powi(-24);
        let probes = [
            0.0,
            -0.0,
            tiny,
            -tiny,
            f32::from_bits(tiny.to_bits() - 1),
            f32::from_bits(tiny.to_bits() + 1),
            2.0f32.powi(-25),
            2.0f32.powi(-26),
            1.0e-7,
            1.0e-8,
            1.0,
            -3.5,
            70000.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            f32::MIN_POSITIVE, // smallest normal f32, far below f16 range
        ];
        for &x in &probes {
            let rounded = f16::round_f32(x);
            assert_eq!(
                survives_f16(x),
                rounded != 0.0,
                "survives_f16({x}) disagrees with round_f32 -> {rounded}"
            );
        }
    }

    #[test]
    fn storage_footprint_scales_with_nnz() {
        let dense = Matrix::random_sparse(64, 64, 0.9, SparsityPattern::Uniform, 8);
        let enc = BitmapMatrix::encode(&dense, VectorLayout::ColumnMajor);
        let s = enc.storage();
        assert_eq!(s.value_bytes, enc.nnz() as u64 * 2);
        assert_eq!(s.metadata_bytes, 64 * 8); // one u64 word per row
                                              // Bitmap metadata stays fixed as sparsity changes; CSR's would not.
        let denser = Matrix::random_sparse(64, 64, 0.1, SparsityPattern::Uniform, 8);
        let enc2 = BitmapMatrix::encode(&denser, VectorLayout::ColumnMajor);
        assert_eq!(enc2.storage().metadata_bytes, s.metadata_bytes);
    }
}
