//! A packed 2-D bit matrix.
//!
//! This is the "bitmap" half of the paper's two-tuple encoding. Bits are
//! packed into 64-bit words per row so that the operations the hardware
//! performs on bitmaps — population counts (`POPC`), row shifts for the
//! sparse im2col (Fig. 11b), and 1-bit outer products (`BOHMMA`) — map to a
//! handful of word operations.

use dsstc_tensor::Matrix;

/// A dense `rows x cols` matrix of bits, packed row-major into `u64` words.
///
/// # Example
/// ```
/// use dsstc_formats::BitMatrix;
/// let mut b = BitMatrix::new(4, 70);
/// b.set(3, 69, true);
/// assert!(b.get(3, 69));
/// assert_eq!(b.count_ones(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl std::fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "BitMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            let bits: String =
                (0..self.cols.min(64)).map(|c| if self.get(r, c) { '1' } else { '0' }).collect();
            writeln!(f, "  {bits}{}", if self.cols > 64 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl BitMatrix {
    /// Creates an all-zero bit matrix.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "bit matrix dimensions must be non-zero");
        let words_per_row = cols.div_ceil(64);
        BitMatrix { rows, cols, words_per_row, words: vec![0; rows * words_per_row] }
    }

    /// Builds the non-zero mask of a dense matrix, packing each row's bits
    /// a word at a time (the software analogue of the encoder's word-wide
    /// mask generation — no per-bit indexing).
    pub fn from_matrix(m: &Matrix) -> Self {
        let mut b = BitMatrix::new(m.rows(), m.cols());
        for r in 0..m.rows() {
            b.fill_row_mask(r, m.row(r));
        }
        b
    }

    /// Packs the non-zero mask of `values` into row `row` starting at bit 0,
    /// a word at a time; bits past `values.len()` stay clear. Used by the
    /// encoders so mask generation never touches individual bits.
    pub(crate) fn fill_row_mask(&mut self, row: usize, values: &[f32]) {
        self.fill_row_mask_with(row, values, |x| x != 0.0);
    }

    /// [`Self::fill_row_mask`] with a caller-chosen significance predicate.
    /// The fused-FP16 encoder passes "survives FP16 rounding" so the mask
    /// agrees with the rounded values it stores, without a separate
    /// whole-matrix rounding pass.
    pub(crate) fn fill_row_mask_with<F: Fn(f32) -> bool>(
        &mut self,
        row: usize,
        values: &[f32],
        keep: F,
    ) {
        debug_assert!(row < self.rows && values.len() <= self.cols);
        let words = &mut self.words[row * self.words_per_row..(row + 1) * self.words_per_row];
        for (word, chunk) in words.iter_mut().zip(values.chunks(64)) {
            let mut w = 0u64;
            for (i, &x) in chunk.iter().enumerate() {
                w |= u64::from(keep(x)) << i;
            }
            *word = w;
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads bit `(row, col)`.
    ///
    /// # Panics
    /// Panics when out of bounds.
    pub fn get(&self, row: usize, col: usize) -> bool {
        assert!(row < self.rows && col < self.cols, "bit index out of bounds");
        let word = self.words[row * self.words_per_row + col / 64];
        (word >> (col % 64)) & 1 == 1
    }

    /// Writes bit `(row, col)`.
    ///
    /// # Panics
    /// Panics when out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        assert!(row < self.rows && col < self.cols, "bit index out of bounds");
        let idx = row * self.words_per_row + col / 64;
        let mask = 1u64 << (col % 64);
        if value {
            self.words[idx] |= mask;
        } else {
            self.words[idx] &= !mask;
        }
    }

    /// Total number of set bits (a matrix-wide `POPC`).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of set bits in one row.
    ///
    /// # Panics
    /// Panics if `row >= rows()`.
    pub fn row_count_ones(&self, row: usize) -> usize {
        assert!(row < self.rows, "row out of bounds");
        self.row_words(row).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of set bits in one column.
    ///
    /// # Panics
    /// Panics if `col >= cols()`.
    pub fn col_count_ones(&self, col: usize) -> usize {
        assert!(col < self.cols, "column out of bounds");
        (0..self.rows).filter(|&r| self.get(r, col)).count()
    }

    /// The packed words of one row.
    ///
    /// # Panics
    /// Panics if `row >= rows()`.
    pub fn row_words(&self, row: usize) -> &[u64] {
        assert!(row < self.rows, "row out of bounds");
        &self.words[row * self.words_per_row..(row + 1) * self.words_per_row]
    }

    /// The whole of row `row` packed into a single word (bit `c` is
    /// `get(row, c)`), for matrices at most 64 columns wide — the
    /// word-parallel accessor the functional SpGEMM hot path uses so a row's
    /// bitmap participates in AND/`count_ones` operations without per-bit
    /// indexing.
    ///
    /// # Panics
    /// Panics if `row >= rows()` or `cols() > 64`.
    pub fn row_word(&self, row: usize) -> u64 {
        assert!(row < self.rows, "row out of bounds");
        assert!(self.cols <= 64, "row_word requires at most 64 columns");
        self.words[row * self.words_per_row]
    }

    /// Column `col` gathered into a single packed word (bit `r` is
    /// `get(r, col)`), for matrices at most 64 rows tall. Bits are packed
    /// row-major, so this gathers one bit per row; callers that need it
    /// repeatedly (the SpGEMM tile preparation) hoist it out of their inner
    /// loops.
    ///
    /// # Panics
    /// Panics if `col >= cols()` or `rows() > 64`.
    pub fn col_word(&self, col: usize) -> u64 {
        assert!(col < self.cols, "column out of bounds");
        assert!(self.rows <= 64, "col_word requires at most 64 rows");
        let (word_idx, shift) = (col / 64, col % 64);
        let mut out = 0u64;
        for r in 0..self.rows {
            out |= ((self.words[r * self.words_per_row + word_idx] >> shift) & 1) << r;
        }
        out
    }

    /// Number of set bits in row `row` strictly before column `col` — the
    /// prefix popcount used to turn a bit position into a condensed value
    /// offset (paper Fig. 11b, step S3).
    ///
    /// # Panics
    /// Panics if `row >= rows()` or `col > cols()`.
    pub fn rank(&self, row: usize, col: usize) -> usize {
        assert!(row < self.rows && col <= self.cols, "rank index out of bounds");
        let words = self.row_words(row);
        let full_words = col / 64;
        let mut count: usize = words[..full_words].iter().map(|w| w.count_ones() as usize).sum();
        let rem = col % 64;
        if rem > 0 {
            let mask = (1u64 << rem) - 1;
            count += (words[full_words] & mask).count_ones() as usize;
        }
        count
    }

    /// Column indices of the set bits of one row, ascending.
    pub fn row_set_bits(&self, row: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.row_count_ones(row));
        for (wi, &word) in self.row_words(row).iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                let col = wi * 64 + bit;
                if col < self.cols {
                    out.push(col);
                }
                w &= w - 1;
            }
        }
        out
    }

    /// Row indices of the set bits of one column, ascending.
    pub fn col_set_bits(&self, col: usize) -> Vec<usize> {
        (0..self.rows).filter(|&r| self.get(r, col)).collect()
    }

    /// 1-bit outer product of a column of `a_bits` with a row of `b_bits`:
    /// the resulting `rows x cols` bitmap has bit `(i, j)` set iff
    /// `a_col[i] && b_row[j]`. This is what the `BOHMMA` instruction computes
    /// for the multiply-bitmap step (paper Fig. 2c).
    pub fn outer_product(a_col: &[bool], b_row: &[bool]) -> BitMatrix {
        assert!(!a_col.is_empty() && !b_row.is_empty(), "operands must be non-empty");
        let mut out = BitMatrix::new(a_col.len(), b_row.len());
        for (i, &a) in a_col.iter().enumerate() {
            if !a {
                continue;
            }
            for (j, &b) in b_row.iter().enumerate() {
                if b {
                    out.set(i, j, true);
                }
            }
        }
        out
    }

    /// Bitwise OR with another bitmap of the same shape (accumulating the
    /// sparsity pattern of merged partial matrices).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn or_assign(&mut self, other: &BitMatrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Extracts a `tile_rows x tile_cols` sub-bitmap at `(row0, col0)`,
    /// padded with zeros past the edges.
    pub fn tile(&self, row0: usize, col0: usize, tile_rows: usize, tile_cols: usize) -> BitMatrix {
        let mut out = BitMatrix::new(tile_rows, tile_cols);
        for r in 0..tile_rows {
            for c in 0..tile_cols {
                let (rr, cc) = (row0 + r, col0 + c);
                if rr < self.rows && cc < self.cols && self.get(rr, cc) {
                    out.set(r, c, true);
                }
            }
        }
        out
    }

    /// Storage size of this bitmap in bytes (1 bit per element, rounded up to
    /// whole words per row), as charged by the memory-traffic model.
    pub fn storage_bytes(&self) -> u64 {
        (self.rows * self.words_per_row * 8) as u64
    }

    /// The packed words, row-major (`rows * cols.div_ceil(64)` of them) —
    /// exposed for the binary serialiser.
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a bitmap from its packed words (the serialiser's inverse of
    /// [`Self::words`]). Fails on a word-count mismatch or a set bit in the
    /// padding past `cols`.
    pub(crate) fn from_words(
        rows: usize,
        cols: usize,
        words: Vec<u64>,
    ) -> Result<Self, &'static str> {
        if rows == 0 || cols == 0 {
            return Err("bit matrix dimensions must be non-zero");
        }
        let words_per_row = cols.div_ceil(64);
        if words.len() != rows * words_per_row {
            return Err("bitmap word count does not match its dimensions");
        }
        let tail_bits = cols % 64;
        if tail_bits > 0 {
            let pad_mask = !((1u64 << tail_bits) - 1);
            for row in 0..rows {
                if words[(row + 1) * words_per_row - 1] & pad_mask != 0 {
                    return Err("bitmap has bits set past its column bound");
                }
            }
        }
        Ok(BitMatrix { rows, cols, words_per_row, words })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsstc_tensor::SparsityPattern;

    #[test]
    fn new_is_all_zero() {
        let b = BitMatrix::new(5, 100);
        assert_eq!(b.count_ones(), 0);
        assert!(b.is_empty());
        assert!(!b.get(4, 99));
    }

    #[test]
    fn set_get_across_word_boundaries() {
        let mut b = BitMatrix::new(2, 130);
        for &c in &[0usize, 63, 64, 127, 128, 129] {
            b.set(1, c, true);
            assert!(b.get(1, c), "column {c}");
        }
        assert_eq!(b.row_count_ones(1), 6);
        assert_eq!(b.row_count_ones(0), 0);
        b.set(1, 64, false);
        assert!(!b.get(1, 64));
        assert_eq!(b.count_ones(), 5);
    }

    #[test]
    fn from_matrix_matches_nnz() {
        let m = Matrix::random_sparse(33, 65, 0.7, SparsityPattern::Uniform, 5);
        let b = BitMatrix::from_matrix(&m);
        assert_eq!(b.count_ones(), m.nnz());
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                assert_eq!(b.get(r, c), m[(r, c)] != 0.0);
            }
        }
    }

    #[test]
    fn row_and_col_words_pack_the_right_bits() {
        let m = Matrix::random_sparse(33, 61, 0.6, SparsityPattern::Uniform, 17);
        let b = BitMatrix::from_matrix(&m);
        for r in 0..b.rows() {
            let w = b.row_word(r);
            for c in 0..b.cols() {
                assert_eq!((w >> c) & 1 == 1, b.get(r, c), "row {r} col {c}");
            }
            assert_eq!(w.count_ones() as usize, b.row_count_ones(r));
        }
        for c in 0..b.cols() {
            let w = b.col_word(c);
            for r in 0..b.rows() {
                assert_eq!((w >> r) & 1 == 1, b.get(r, c), "row {r} col {c}");
            }
            assert_eq!(w.count_ones() as usize, b.col_count_ones(c));
        }
    }

    #[test]
    fn col_word_reaches_past_the_first_word() {
        // 70 columns: column 69 lives in the second packed word per row.
        let mut b = BitMatrix::new(3, 70);
        b.set(0, 69, true);
        b.set(2, 69, true);
        assert_eq!(b.col_word(69), 0b101);
        assert_eq!(b.col_word(68), 0);
    }

    #[test]
    #[should_panic(expected = "at most 64 columns")]
    fn row_word_rejects_wide_matrices() {
        let _ = BitMatrix::new(2, 65).row_word(0);
    }

    #[test]
    #[should_panic(expected = "at most 64 rows")]
    fn col_word_rejects_tall_matrices() {
        let _ = BitMatrix::new(65, 2).col_word(0);
    }

    #[test]
    fn rank_counts_prefix_ones() {
        let mut b = BitMatrix::new(1, 200);
        for c in [3usize, 64, 70, 150] {
            b.set(0, c, true);
        }
        assert_eq!(b.rank(0, 0), 0);
        assert_eq!(b.rank(0, 3), 0);
        assert_eq!(b.rank(0, 4), 1);
        assert_eq!(b.rank(0, 65), 2);
        assert_eq!(b.rank(0, 151), 4);
        assert_eq!(b.rank(0, 200), 4);
    }

    #[test]
    fn rank_is_consistent_with_row_set_bits() {
        let m = Matrix::random_sparse(4, 150, 0.5, SparsityPattern::Uniform, 9);
        let b = BitMatrix::from_matrix(&m);
        for r in 0..4 {
            let set = b.row_set_bits(r);
            for (i, &c) in set.iter().enumerate() {
                assert_eq!(b.rank(r, c), i, "row {r} col {c}");
            }
            assert_eq!(b.rank(r, 150), set.len());
        }
    }

    #[test]
    fn row_and_col_set_bits() {
        let mut b = BitMatrix::new(3, 3);
        b.set(0, 1, true);
        b.set(2, 1, true);
        b.set(2, 2, true);
        assert_eq!(b.row_set_bits(2), vec![1, 2]);
        assert_eq!(b.col_set_bits(1), vec![0, 2]);
        assert_eq!(b.col_count_ones(1), 2);
        assert_eq!(b.col_count_ones(0), 0);
    }

    #[test]
    fn outer_product_bitmap() {
        let a = [true, false, true];
        let b = [false, true];
        let p = BitMatrix::outer_product(&a, &b);
        assert_eq!(p.rows(), 3);
        assert_eq!(p.cols(), 2);
        assert!(p.get(0, 1));
        assert!(p.get(2, 1));
        assert!(!p.get(1, 1));
        assert!(!p.get(0, 0));
        assert_eq!(p.count_ones(), 2);
    }

    #[test]
    fn or_assign_unions_patterns() {
        let mut a = BitMatrix::new(2, 2);
        a.set(0, 0, true);
        let mut b = BitMatrix::new(2, 2);
        b.set(1, 1, true);
        a.or_assign(&b);
        assert!(a.get(0, 0) && a.get(1, 1));
        assert_eq!(a.count_ones(), 2);
    }

    #[test]
    fn tile_extraction_pads_with_zeros() {
        let mut b = BitMatrix::new(4, 4);
        b.set(3, 3, true);
        let t = b.tile(2, 2, 4, 4);
        assert!(t.get(1, 1));
        assert_eq!(t.count_ones(), 1);
    }

    #[test]
    fn storage_bytes_rounds_to_words() {
        let b = BitMatrix::new(4, 65);
        // 2 words per row * 4 rows * 8 bytes.
        assert_eq!(b.storage_bytes(), 64);
    }

    #[test]
    fn debug_format_is_nonempty() {
        let b = BitMatrix::new(2, 4);
        assert!(format!("{b:?}").contains("BitMatrix 2x4"));
    }
}
