//! Server metrics: throughput, latency percentiles, batch-size histogram
//! and cache hit rates.

use std::sync::Mutex;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Upper bound on retained latency samples per stream; percentiles are
/// exact below this and computed from an unbiased reservoir sample above.
const SAMPLE_CAP: usize = 4096;

/// A point-in-time snapshot of the server's metrics.
#[derive(Clone, Debug)]
pub struct ServerStats {
    /// Requests answered so far.
    pub completed_requests: u64,
    /// Batches executed so far.
    pub executed_batches: u64,
    /// Completed requests per wall-clock second since the server started.
    pub throughput_rps: f64,
    /// Mean requests per executed batch.
    pub mean_batch_size: f64,
    /// Largest batch observed.
    pub max_batch_size: usize,
    /// Batch-size histogram: `histogram[i]` counts batches of size `i + 1`.
    pub batch_histogram: Vec<u64>,
    /// Median wall-clock queue wait, µs.
    pub queue_p50_us: f64,
    /// 99th-percentile wall-clock queue wait, µs.
    pub queue_p99_us: f64,
    /// Median wall-clock batch-execution time, µs.
    pub execute_p50_us: f64,
    /// 99th-percentile wall-clock batch-execution time, µs.
    pub execute_p99_us: f64,
    /// Median modelled per-request GPU latency, µs.
    pub modelled_p50_us: f64,
    /// Encode-cache (model repository) hits.
    pub encode_hits: u64,
    /// Encode-cache misses (i.e. prune+encode operations performed).
    pub encode_misses: u64,
    /// Fraction of repository lookups served from the cache.
    pub encode_hit_rate: f64,
    /// Fraction of modelled-latency lookups served from the cache.
    pub timing_hit_rate: f64,
    /// Batches executed per worker index.
    pub batches_per_worker: Vec<u64>,
}

impl ServerStats {
    /// Number of workers that executed at least one batch.
    pub fn active_workers(&self) -> usize {
        self.batches_per_worker.iter().filter(|&&n| n > 0).count()
    }

    /// Renders the snapshot as a small text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "requests: {}  batches: {}  throughput: {:.1} req/s\n",
            self.completed_requests, self.executed_batches, self.throughput_rps
        ));
        out.push_str(&format!(
            "batch size: mean {:.2}  max {}  histogram {:?}\n",
            self.mean_batch_size, self.max_batch_size, self.batch_histogram
        ));
        out.push_str(&format!(
            "queue wait us: p50 {:.0}  p99 {:.0}   execute us: p50 {:.0}  p99 {:.0}\n",
            self.queue_p50_us, self.queue_p99_us, self.execute_p50_us, self.execute_p99_us
        ));
        out.push_str(&format!("modelled GPU us/request: p50 {:.1}\n", self.modelled_p50_us));
        out.push_str(&format!(
            "encode cache: {} hits / {} misses ({:.0}% hit rate)   timing cache: {:.0}% hit rate\n",
            self.encode_hits,
            self.encode_misses,
            self.encode_hit_rate * 100.0,
            self.timing_hit_rate * 100.0
        ));
        out.push_str(&format!(
            "active workers: {} {:?}\n",
            self.active_workers(),
            self.batches_per_worker
        ));
        out
    }
}

#[derive(Debug)]
struct Inner {
    completed_requests: u64,
    executed_batches: u64,
    batch_histogram: Vec<u64>,
    queue_us: Reservoir,
    execute_us: Reservoir,
    modelled_request_us: Reservoir,
    batches_per_worker: Vec<u64>,
}

/// A bounded uniform sample of a latency stream (Vitter's algorithm R), so
/// a long-running server's percentile state stays O(1) in memory no matter
/// how many requests it has served. Exact until `cap` samples, an unbiased
/// uniform sample after.
#[derive(Debug)]
struct Reservoir {
    samples: Vec<f64>,
    seen: u64,
    cap: usize,
    rng: StdRng,
}

impl Reservoir {
    fn new(cap: usize, seed: u64) -> Self {
        Reservoir { samples: Vec::new(), seen: 0, cap, rng: StdRng::seed_from_u64(seed) }
    }

    fn push(&mut self, value: f64) {
        self.seen += 1;
        if self.samples.len() < self.cap {
            self.samples.push(value);
        } else {
            let slot = self.rng.random_range(0u64..self.seen);
            if (slot as usize) < self.cap {
                self.samples[slot as usize] = value;
            }
        }
    }
}

/// Collects per-batch measurements from the worker pool.
#[derive(Debug)]
pub(crate) struct StatsCollector {
    started: Instant,
    inner: Mutex<Inner>,
}

impl StatsCollector {
    pub fn new() -> Self {
        StatsCollector {
            started: Instant::now(),
            inner: Mutex::new(Inner {
                completed_requests: 0,
                executed_batches: 0,
                batch_histogram: Vec::new(),
                queue_us: Reservoir::new(SAMPLE_CAP, 1),
                execute_us: Reservoir::new(SAMPLE_CAP, 2),
                modelled_request_us: Reservoir::new(SAMPLE_CAP, 3),
                batches_per_worker: Vec::new(),
            }),
        }
    }

    /// Records one executed batch.
    pub fn record_batch(
        &self,
        worker: usize,
        queue_us: &[f64],
        execute_us: f64,
        modelled_request_us: f64,
    ) {
        let batch_size = queue_us.len();
        debug_assert!(batch_size > 0, "batches are non-empty");
        let mut inner = self.inner.lock().expect("stats mutex poisoned");
        inner.completed_requests += batch_size as u64;
        inner.executed_batches += 1;
        if inner.batch_histogram.len() < batch_size {
            inner.batch_histogram.resize(batch_size, 0);
        }
        inner.batch_histogram[batch_size - 1] += 1;
        for &wait in queue_us {
            inner.queue_us.push(wait);
        }
        inner.execute_us.push(execute_us);
        for _ in 0..batch_size {
            inner.modelled_request_us.push(modelled_request_us);
        }
        if inner.batches_per_worker.len() <= worker {
            inner.batches_per_worker.resize(worker + 1, 0);
        }
        inner.batches_per_worker[worker] += 1;
    }

    /// Produces a snapshot, folding in the cache counters maintained by the
    /// repository and timing model.
    pub fn snapshot(
        &self,
        encode_hits: u64,
        encode_misses: u64,
        timing_hit_rate: f64,
    ) -> ServerStats {
        let inner = self.inner.lock().expect("stats mutex poisoned");
        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        let encode_total = encode_hits + encode_misses;
        ServerStats {
            completed_requests: inner.completed_requests,
            executed_batches: inner.executed_batches,
            throughput_rps: inner.completed_requests as f64 / elapsed,
            mean_batch_size: if inner.executed_batches == 0 {
                0.0
            } else {
                inner.completed_requests as f64 / inner.executed_batches as f64
            },
            max_batch_size: inner.batch_histogram.len(),
            batch_histogram: inner.batch_histogram.clone(),
            queue_p50_us: percentile(&inner.queue_us.samples, 0.50),
            queue_p99_us: percentile(&inner.queue_us.samples, 0.99),
            execute_p50_us: percentile(&inner.execute_us.samples, 0.50),
            execute_p99_us: percentile(&inner.execute_us.samples, 0.99),
            modelled_p50_us: percentile(&inner.modelled_request_us.samples, 0.50),
            encode_hits,
            encode_misses,
            encode_hit_rate: if encode_total == 0 {
                0.0
            } else {
                encode_hits as f64 / encode_total as f64
            },
            timing_hit_rate,
            batches_per_worker: inner.batches_per_worker.clone(),
        }
    }
}

/// Nearest-rank percentile of an unsorted sample set; 0 when empty.
fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn collector_aggregates_batches() {
        let c = StatsCollector::new();
        c.record_batch(0, &[10.0, 20.0], 100.0, 5.0);
        c.record_batch(1, &[30.0], 50.0, 9.0);
        let s = c.snapshot(3, 1, 0.75);
        assert_eq!(s.completed_requests, 3);
        assert_eq!(s.executed_batches, 2);
        assert_eq!(s.batch_histogram, vec![1, 1]); // one 1-batch, one 2-batch
        assert!((s.mean_batch_size - 1.5).abs() < 1e-12);
        assert_eq!(s.max_batch_size, 2);
        assert_eq!(s.queue_p50_us, 20.0);
        assert_eq!(s.execute_p99_us, 100.0);
        assert_eq!(s.modelled_p50_us, 5.0);
        assert!((s.encode_hit_rate - 0.75).abs() < 1e-12);
        assert_eq!(s.batches_per_worker, vec![1, 1]);
        assert_eq!(s.active_workers(), 2);
        assert!(s.throughput_rps > 0.0);
    }

    #[test]
    fn reservoir_bounds_memory_and_keeps_percentiles_sane() {
        let c = StatsCollector::new();
        // Far more requests than the cap: a uniform latency ramp 0..100_000.
        for i in 0..100_000u64 {
            c.record_batch(0, &[i as f64], i as f64, 1.0);
        }
        let inner = c.inner.lock().unwrap();
        assert_eq!(inner.queue_us.samples.len(), SAMPLE_CAP);
        assert_eq!(inner.queue_us.seen, 100_000);
        drop(inner);
        let s = c.snapshot(0, 0, 0.0);
        assert_eq!(s.completed_requests, 100_000);
        // Sampled percentiles of a uniform ramp stay near the true values.
        assert!((s.queue_p50_us - 50_000.0).abs() < 5_000.0, "p50 {}", s.queue_p50_us);
        assert!(s.queue_p99_us > 90_000.0, "p99 {}", s.queue_p99_us);
    }

    #[test]
    fn snapshot_of_idle_server_is_zeroed() {
        let c = StatsCollector::new();
        let s = c.snapshot(0, 0, 0.0);
        assert_eq!(s.completed_requests, 0);
        assert_eq!(s.mean_batch_size, 0.0);
        assert_eq!(s.encode_hit_rate, 0.0);
        assert!(s.render().contains("requests: 0"));
    }

    #[test]
    fn render_mentions_key_metrics() {
        let c = StatsCollector::new();
        c.record_batch(0, &[1.0], 2.0, 3.0);
        let text = c.snapshot(1, 1, 0.5).render();
        assert!(text.contains("throughput"));
        assert!(text.contains("encode cache"));
        assert!(text.contains("active workers"));
    }
}
