//! Server metrics: throughput, latency percentiles (aggregate and
//! per-priority), batch-size histogram, per-device utilisation and cache
//! hit rates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::repository::EncodeCacheStats;
use crate::request::Priority;

/// Upper bound on retained latency samples per stream; percentiles are
/// exact below this and computed from an unbiased reservoir sample above.
const SAMPLE_CAP: usize = 4096;

/// Latency percentiles of one priority class.
#[derive(Clone, Debug)]
pub struct PriorityLatency {
    /// The service class.
    pub priority: Priority,
    /// Requests of this priority answered so far.
    pub completed: u64,
    /// Requests of this priority rejected at submit by admission control
    /// ([`crate::ServeError::ShedLoad`]); zero unless
    /// [`crate::ServeConfig::admission`] is enabled.
    pub shed: u64,
    /// Median wall-clock queue wait, µs.
    pub queue_p50_us: f64,
    /// 99th-percentile wall-clock queue wait, µs.
    pub queue_p99_us: f64,
    /// Median wall-clock batch-execution time seen by this class, µs.
    pub execute_p50_us: f64,
    /// 99th-percentile wall-clock batch-execution time seen by this class,
    /// µs.
    pub execute_p99_us: f64,
}

/// Modelled load of one pooled device.
#[derive(Clone, Debug)]
pub struct DeviceStats {
    /// Device name (from its `GpuConfig`).
    pub name: String,
    /// Batches executed on this device.
    pub batches: u64,
    /// Total modelled busy time charged to this device, µs.
    pub modelled_busy_us: f64,
    /// Share of the pool's modelled makespan this device was busy
    /// (`modelled_busy_us / makespan`), in `[0, 1]`.
    pub utilisation: f64,
}

/// A point-in-time snapshot of the server's metrics.
#[derive(Clone, Debug)]
pub struct ServerStats {
    /// Requests answered so far.
    pub completed_requests: u64,
    /// Batches executed so far.
    pub executed_batches: u64,
    /// Completed requests per wall-clock second since the server started.
    pub throughput_rps: f64,
    /// Mean requests per executed batch.
    pub mean_batch_size: f64,
    /// Largest batch observed.
    pub max_batch_size: usize,
    /// Batch-size histogram: `histogram[i]` counts batches of size `i + 1`.
    pub batch_histogram: Vec<u64>,
    /// Median wall-clock queue wait, µs.
    pub queue_p50_us: f64,
    /// 99th-percentile wall-clock queue wait, µs.
    pub queue_p99_us: f64,
    /// Median wall-clock batch-execution time, µs.
    pub execute_p50_us: f64,
    /// 99th-percentile wall-clock batch-execution time, µs.
    pub execute_p99_us: f64,
    /// Median modelled per-request GPU latency, µs.
    pub modelled_p50_us: f64,
    /// Queue / execute percentiles split by priority class, `Low` first
    /// (indexable via [`Priority::index`] or [`ServerStats::for_priority`]).
    pub per_priority: Vec<PriorityLatency>,
    /// Per-device modelled load, in pool order.
    pub per_device: Vec<DeviceStats>,
    /// Modelled makespan across the pool: the largest per-device modelled
    /// busy total, µs.
    pub modelled_makespan_us: f64,
    /// Encode-cache (model repository) in-memory hits.
    pub encode_hits: u64,
    /// Encode-cache misses (each became a disk restore or a fresh
    /// prune+encode).
    pub encode_misses: u64,
    /// Misses served by restoring a persisted artifact from the on-disk
    /// store (the warm-start path).
    pub encode_disk_loads: u64,
    /// Misses that paid the full prune+encode (the cold path).
    pub encode_fresh: u64,
    /// Artifacts LRU-evicted from the bounded in-memory tier.
    pub encode_evictions: u64,
    /// Cumulative wall-clock milliseconds spent prune+encoding — what a
    /// warm-started server skips.
    pub encode_fresh_ms: f64,
    /// Cumulative wall-clock milliseconds spent restoring artifacts from
    /// disk.
    pub encode_disk_ms: f64,
    /// Artifacts restored into the memory tier by the boot-time warmer
    /// ([`crate::ModelRepository::warm_boot`]).
    pub encode_warm_restored: u64,
    /// Stale-spec artifacts the warmer re-encoded for the current device
    /// pool.
    pub encode_warm_reencoded: u64,
    /// Corrupt artifacts the warmer healed with a fresh encode.
    pub encode_warm_healed: u64,
    /// Artifacts currently tracked by the on-disk store manifest.
    pub store_entries: u64,
    /// Bytes of artifact files currently tracked by the store manifest.
    pub store_bytes: u64,
    /// Artifacts removed from the on-disk store by garbage collection
    /// (budget evictions plus orphan sweeps).
    pub store_gc_removed: u64,
    /// Fraction of repository lookups served from the in-memory cache.
    pub encode_hit_rate: f64,
    /// Fraction of modelled-latency lookups served from the cache.
    pub timing_hit_rate: f64,
    /// Per-connection / per-frame counters of the TCP front-end, when the
    /// snapshot came from a [`crate::net::WireServer`] (`None` for a plain
    /// in-process server). When the front-end runs more than one reactor
    /// this is the field-wise sum of `wire_reactors`.
    pub wire: Option<WireStats>,
    /// Per-reactor counter snapshots of a sharded wire front-end, in
    /// reactor order (reactor 0 owns the listener). Empty for a plain
    /// in-process server; a single-reactor front-end reports one entry
    /// equal to `wire`.
    pub wire_reactors: Vec<WireStats>,
    /// Cluster routing counters, when the snapshot came from a wire server
    /// (standalone servers report a single-node map; `None` for a plain
    /// in-process server). See [`crate::cluster`].
    pub cluster: Option<ClusterStats>,
}

impl ServerStats {
    /// Number of devices (= pinned workers) that executed at least one
    /// batch.
    pub fn active_workers(&self) -> usize {
        self.per_device.iter().filter(|d| d.batches > 0).count()
    }

    /// The latency summary of one priority class.
    pub fn for_priority(&self, priority: Priority) -> &PriorityLatency {
        &self.per_priority[priority.index()]
    }

    /// Requests rejected by admission control across every priority class.
    pub fn total_shed(&self) -> u64 {
        self.per_priority.iter().map(|p| p.shed).sum()
    }

    /// Renders the snapshot as a small text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "requests: {}  batches: {}  throughput: {:.1} req/s\n",
            self.completed_requests, self.executed_batches, self.throughput_rps
        ));
        out.push_str(&format!(
            "batch size: mean {:.2}  max {}  histogram {:?}\n",
            self.mean_batch_size, self.max_batch_size, self.batch_histogram
        ));
        out.push_str(&format!(
            "queue wait us: p50 {:.0}  p99 {:.0}   execute us: p50 {:.0}  p99 {:.0}\n",
            self.queue_p50_us, self.queue_p99_us, self.execute_p50_us, self.execute_p99_us
        ));
        for p in &self.per_priority {
            if p.completed > 0 || p.shed > 0 {
                out.push_str(&format!(
                    "  priority {:<7} {:>6} requests   queue us: p50 {:.0}  p99 {:.0}   shed {}\n",
                    p.priority, p.completed, p.queue_p50_us, p.queue_p99_us, p.shed
                ));
            }
        }
        out.push_str(&format!("modelled GPU us/request: p50 {:.1}\n", self.modelled_p50_us));
        for d in &self.per_device {
            out.push_str(&format!(
                "  device {:<12} {:>5} batches   modelled busy {:>10.1} us   utilisation {:>4.0}%\n",
                d.name,
                d.batches,
                d.modelled_busy_us,
                d.utilisation * 100.0
            ));
        }
        out.push_str(&format!(
            "encode cache: {} hits / {} misses ({:.0}% hit rate)   timing cache: {:.0}% hit rate\n",
            self.encode_hits,
            self.encode_misses,
            self.encode_hit_rate * 100.0,
            self.timing_hit_rate * 100.0
        ));
        out.push_str(&format!(
            "  misses paid: {} fresh encodes ({:.1} ms) + {} disk restores ({:.1} ms)   evictions: {}\n",
            self.encode_fresh,
            self.encode_fresh_ms,
            self.encode_disk_loads,
            self.encode_disk_ms,
            self.encode_evictions
        ));
        let warm_activity = self.encode_warm_restored
            + self.encode_warm_reencoded
            + self.encode_warm_healed
            + self.store_gc_removed;
        if self.store_entries > 0 || warm_activity > 0 {
            out.push_str(&format!(
                "  store: {} artifacts / {} B   warm boot: {} restored + {} re-encoded + {} healed   gc removed: {}\n",
                self.store_entries,
                self.store_bytes,
                self.encode_warm_restored,
                self.encode_warm_reencoded,
                self.encode_warm_healed,
                self.store_gc_removed
            ));
        }
        out.push_str(&format!(
            "active workers: {} {:?}\n",
            self.active_workers(),
            self.per_device.iter().map(|d| d.batches).collect::<Vec<_>>()
        ));
        if let Some(wire) = &self.wire {
            out.push_str(&format!(
                "wire: {} conns ({} open, {} rejected)   frames {} in / {} out ({} errors)   {} B in / {} B out\n",
                wire.connections_accepted,
                wire.open_connections(),
                wire.connections_rejected,
                wire.frames_received,
                wire.frames_sent,
                wire.error_frames_sent,
                wire.bytes_received,
                wire.bytes_sent,
            ));
            out.push_str(&format!(
                "  decode errors: {}   requests rejected: {}   in flight: {}   outbound overflows: {}   shed {} ({} low / {} normal / {} high)\n",
                wire.decode_errors,
                wire.requests_rejected,
                wire.in_flight,
                wire.outbound_overflows,
                wire.shed_total(),
                wire.shed_low,
                wire.shed_normal,
                wire.shed_high,
            ));
        }
        if let Some(cluster) = &self.cluster {
            out.push_str(&format!(
                "cluster: node {}  shard map v{}  peers {}/{} alive\n",
                cluster.node_id,
                cluster.shard_map_version,
                cluster.peers_alive,
                cluster.peers_total,
            ));
            out.push_str(&format!(
                "  redirects: {}   failover serves: {}   hellos: {} ({} auth failures)   peer probes: {} ({} failed)\n",
                cluster.redirects,
                cluster.failover_serves,
                cluster.hellos,
                cluster.auth_failures,
                cluster.peer_probes,
                cluster.peer_failures,
            ));
        }
        out
    }
}

/// Cluster routing counters of one serving node (see
/// [`crate::cluster::ClusterState::snapshot`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// This node's id in the shard map.
    pub node_id: u64,
    /// Current shard-map version (bumped on every liveness transition).
    pub shard_map_version: u64,
    /// Members currently marked alive (including this node).
    pub peers_alive: u64,
    /// All known members, dead or alive.
    pub peers_total: u64,
    /// Requests answered with a `NotMine` redirect because this node does
    /// not own their shard.
    pub redirects: u64,
    /// Requests served as a non-primary replica of their shard (the
    /// failover path).
    pub failover_serves: u64,
    /// Hello handshakes answered with a shard map.
    pub hellos: u64,
    /// Hellos rejected for a wrong or missing auth token.
    pub auth_failures: u64,
    /// Peer liveness probes sent (failed or not).
    pub peer_probes: u64,
    /// Peer liveness probes that failed.
    pub peer_failures: u64,
}

/// Per-connection / per-frame counters of the TCP front-end (see
/// [`crate::net::WireServer::wire_stats`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Connections accepted since boot.
    pub connections_accepted: u64,
    /// Connections refused over the `max_connections` limit (or whose
    /// setup failed).
    pub connections_rejected: u64,
    /// Accepted connections since closed (EOF, error, framing poison or
    /// shutdown).
    pub connections_closed: u64,
    /// Request frames decoded.
    pub frames_received: u64,
    /// Response frames handed to the event loop (error frames excluded).
    pub frames_sent: u64,
    /// Error frames generated (request-level rejections and framing
    /// failures).
    pub error_frames_sent: u64,
    /// Raw bytes read off client sockets.
    pub bytes_received: u64,
    /// Raw bytes the sockets accepted.
    pub bytes_sent: u64,
    /// Framing failures (bad magic, checksum mismatch, unsupported
    /// version, oversized or malformed frames); each poisons its
    /// connection.
    pub decode_errors: u64,
    /// Requests the runtime refused at submit time (invalid width,
    /// draining).
    pub requests_rejected: u64,
    /// Wire requests currently inside the batching runtime.
    pub in_flight: u64,
    /// Connections poisoned for breaching the per-connection outbound
    /// buffer cap ([`crate::ServeConfig::max_outbound_bytes`]) — a client
    /// stopped reading while responses kept completing.
    pub outbound_overflows: u64,
    /// Low-priority wire requests rejected by admission control (answered
    /// with a [`crate::net::WireStatus::ShedLoad`] error frame).
    pub shed_low: u64,
    /// Normal-priority wire requests rejected by admission control.
    pub shed_normal: u64,
    /// High-priority wire requests rejected by admission control (only the
    /// queue-depth bound sheds this class).
    pub shed_high: u64,
}

impl WireStats {
    /// Connections currently open.
    pub fn open_connections(&self) -> u64 {
        self.connections_accepted.saturating_sub(self.connections_closed)
    }

    /// Wire requests rejected by admission control, across every priority.
    pub fn shed_total(&self) -> u64 {
        self.shed_low + self.shed_normal + self.shed_high
    }

    /// The shed counter of one priority class.
    pub fn shed_for(&self, priority: Priority) -> u64 {
        match priority {
            Priority::Low => self.shed_low,
            Priority::Normal => self.shed_normal,
            Priority::High => self.shed_high,
        }
    }

    /// Field-wise sum of per-reactor snapshots. Every field — including the
    /// `in_flight` gauge, which each reactor stores from its own registry —
    /// is owned by exactly one reactor, so the merged view is an exact sum,
    /// not an approximation.
    pub fn merged(parts: &[WireStats]) -> WireStats {
        let mut total = WireStats::default();
        for part in parts {
            total.connections_accepted += part.connections_accepted;
            total.connections_rejected += part.connections_rejected;
            total.connections_closed += part.connections_closed;
            total.frames_received += part.frames_received;
            total.frames_sent += part.frames_sent;
            total.error_frames_sent += part.error_frames_sent;
            total.bytes_received += part.bytes_received;
            total.bytes_sent += part.bytes_sent;
            total.decode_errors += part.decode_errors;
            total.requests_rejected += part.requests_rejected;
            total.in_flight += part.in_flight;
            total.outbound_overflows += part.outbound_overflows;
            total.shed_low += part.shed_low;
            total.shed_normal += part.shed_normal;
            total.shed_high += part.shed_high;
        }
        total
    }
}

/// Lock-free counters behind [`WireStats`], updated by the wire event loop
/// and read by any thread.
#[derive(Debug, Default)]
pub(crate) struct WireStatsCollector {
    connections_accepted: AtomicU64,
    connections_rejected: AtomicU64,
    connections_closed: AtomicU64,
    frames_received: AtomicU64,
    frames_sent: AtomicU64,
    error_frames_sent: AtomicU64,
    bytes_received: AtomicU64,
    bytes_sent: AtomicU64,
    decode_errors: AtomicU64,
    requests_rejected: AtomicU64,
    in_flight: AtomicU64,
    outbound_overflows: AtomicU64,
    shed: [AtomicU64; Priority::ALL.len()],
}

impl WireStatsCollector {
    pub fn new() -> Self {
        WireStatsCollector::default()
    }

    pub fn connection_accepted(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
    }

    pub fn connection_rejected(&self) {
        self.connections_rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub fn connection_closed(&self) {
        self.connections_closed.fetch_add(1, Ordering::Relaxed);
    }

    pub fn frame_received(&self) {
        self.frames_received.fetch_add(1, Ordering::Relaxed);
    }

    pub fn frame_sent(&self) {
        self.frames_sent.fetch_add(1, Ordering::Relaxed);
    }

    pub fn error_frame_sent(&self) {
        self.error_frames_sent.fetch_add(1, Ordering::Relaxed);
    }

    pub fn bytes_received(&self, n: u64) {
        self.bytes_received.fetch_add(n, Ordering::Relaxed);
    }

    pub fn bytes_sent(&self, n: u64) {
        self.bytes_sent.fetch_add(n, Ordering::Relaxed);
    }

    pub fn decode_error(&self) {
        self.decode_errors.fetch_add(1, Ordering::Relaxed);
    }

    pub fn request_rejected(&self) {
        self.requests_rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub fn request_shed(&self, priority: Priority) {
        self.shed[priority.index()].fetch_add(1, Ordering::Relaxed);
    }

    pub fn set_in_flight(&self, n: u64) {
        self.in_flight.store(n, Ordering::Relaxed);
    }

    pub fn outbound_overflow(&self) {
        self.outbound_overflows.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> WireStats {
        WireStats {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_rejected: self.connections_rejected.load(Ordering::Relaxed),
            connections_closed: self.connections_closed.load(Ordering::Relaxed),
            frames_received: self.frames_received.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            error_frames_sent: self.error_frames_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            requests_rejected: self.requests_rejected.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            outbound_overflows: self.outbound_overflows.load(Ordering::Relaxed),
            shed_low: self.shed[Priority::Low.index()].load(Ordering::Relaxed),
            shed_normal: self.shed[Priority::Normal.index()].load(Ordering::Relaxed),
            shed_high: self.shed[Priority::High.index()].load(Ordering::Relaxed),
        }
    }
}

#[derive(Debug)]
struct PriorityAgg {
    completed: u64,
    queue_us: Reservoir,
    execute_us: Reservoir,
}

#[derive(Debug)]
struct Inner {
    completed_requests: u64,
    executed_batches: u64,
    batch_histogram: Vec<u64>,
    queue_us: Reservoir,
    execute_us: Reservoir,
    modelled_request_us: Reservoir,
    per_priority: Vec<PriorityAgg>,
    device_batches: Vec<u64>,
    device_busy_modelled_us: Vec<f64>,
}

/// A bounded uniform sample of a latency stream (Vitter's algorithm R), so
/// a long-running server's percentile state stays O(1) in memory no matter
/// how many requests it has served. Exact until `cap` samples, an unbiased
/// uniform sample after; the replacement pattern is fully determined by the
/// seed, so two reservoirs fed the same stream agree element-for-element.
#[derive(Debug)]
struct Reservoir {
    samples: Vec<f64>,
    seen: u64,
    cap: usize,
    rng: StdRng,
}

impl Reservoir {
    fn new(cap: usize, seed: u64) -> Self {
        Reservoir { samples: Vec::new(), seen: 0, cap, rng: StdRng::seed_from_u64(seed) }
    }

    fn push(&mut self, value: f64) {
        self.seen += 1;
        if self.samples.len() < self.cap {
            self.samples.push(value);
        } else {
            let slot = self.rng.random_range(0u64..self.seen);
            if (slot as usize) < self.cap {
                self.samples[slot as usize] = value;
            }
        }
    }
}

/// Collects per-batch measurements from the worker pool.
#[derive(Debug)]
pub(crate) struct StatsCollector {
    started: Instant,
    inner: Mutex<Inner>,
    /// Requests rejected at submit by admission control, per priority
    /// class; atomics so the submit path never takes the batch mutex.
    shed: [AtomicU64; Priority::ALL.len()],
}

impl StatsCollector {
    pub fn new() -> Self {
        let per_priority = Priority::ALL
            .iter()
            .enumerate()
            .map(|(i, _)| PriorityAgg {
                completed: 0,
                queue_us: Reservoir::new(SAMPLE_CAP, 10 + i as u64),
                execute_us: Reservoir::new(SAMPLE_CAP, 20 + i as u64),
            })
            .collect();
        StatsCollector {
            started: Instant::now(),
            inner: Mutex::new(Inner {
                completed_requests: 0,
                executed_batches: 0,
                batch_histogram: Vec::new(),
                queue_us: Reservoir::new(SAMPLE_CAP, 1),
                execute_us: Reservoir::new(SAMPLE_CAP, 2),
                modelled_request_us: Reservoir::new(SAMPLE_CAP, 3),
                per_priority,
                device_batches: Vec::new(),
                device_busy_modelled_us: Vec::new(),
            }),
            shed: Default::default(),
        }
    }

    /// Records one request rejected at submit by admission control.
    pub fn record_shed(&self, priority: Priority) {
        self.shed[priority.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one executed batch: the device it ran on, each member's
    /// priority and queue wait, the wall-clock execute time, and the
    /// modelled batch / per-request times.
    pub fn record_batch(
        &self,
        device: usize,
        queue_us: &[(Priority, f64)],
        execute_us: f64,
        modelled_batch_us: f64,
        modelled_request_us: f64,
    ) {
        let batch_size = queue_us.len();
        debug_assert!(batch_size > 0, "batches are non-empty");
        let mut inner = self.inner.lock().expect("stats mutex poisoned");
        inner.completed_requests += batch_size as u64;
        inner.executed_batches += 1;
        if inner.batch_histogram.len() < batch_size {
            inner.batch_histogram.resize(batch_size, 0);
        }
        inner.batch_histogram[batch_size - 1] += 1;
        for &(priority, wait) in queue_us {
            inner.queue_us.push(wait);
            let agg = &mut inner.per_priority[priority.index()];
            agg.completed += 1;
            agg.queue_us.push(wait);
            agg.execute_us.push(execute_us);
        }
        inner.execute_us.push(execute_us);
        for _ in 0..batch_size {
            inner.modelled_request_us.push(modelled_request_us);
        }
        if inner.device_batches.len() <= device {
            inner.device_batches.resize(device + 1, 0);
            inner.device_busy_modelled_us.resize(device + 1, 0.0);
        }
        inner.device_batches[device] += 1;
        inner.device_busy_modelled_us[device] += modelled_batch_us;
    }

    /// Produces a snapshot, folding in the cache counters maintained by the
    /// repository and dispatcher plus the pool's device names.
    pub fn snapshot(
        &self,
        encode: EncodeCacheStats,
        timing_hit_rate: f64,
        device_names: &[String],
    ) -> ServerStats {
        let inner = self.inner.lock().expect("stats mutex poisoned");
        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        let per_priority = Priority::ALL
            .iter()
            .map(|&priority| {
                let agg = &inner.per_priority[priority.index()];
                PriorityLatency {
                    priority,
                    completed: agg.completed,
                    shed: self.shed[priority.index()].load(Ordering::Relaxed),
                    queue_p50_us: percentile(&agg.queue_us.samples, 0.50),
                    queue_p99_us: percentile(&agg.queue_us.samples, 0.99),
                    execute_p50_us: percentile(&agg.execute_us.samples, 0.50),
                    execute_p99_us: percentile(&agg.execute_us.samples, 0.99),
                }
            })
            .collect();
        let makespan = inner.device_busy_modelled_us.iter().copied().fold(0.0, f64::max);
        let per_device = device_names
            .iter()
            .enumerate()
            .map(|(d, name)| {
                let busy = inner.device_busy_modelled_us.get(d).copied().unwrap_or(0.0);
                DeviceStats {
                    name: name.clone(),
                    batches: inner.device_batches.get(d).copied().unwrap_or(0),
                    modelled_busy_us: busy,
                    utilisation: if makespan > 0.0 { busy / makespan } else { 0.0 },
                }
            })
            .collect();
        ServerStats {
            completed_requests: inner.completed_requests,
            executed_batches: inner.executed_batches,
            throughput_rps: inner.completed_requests as f64 / elapsed,
            mean_batch_size: if inner.executed_batches == 0 {
                0.0
            } else {
                inner.completed_requests as f64 / inner.executed_batches as f64
            },
            max_batch_size: inner.batch_histogram.len(),
            batch_histogram: inner.batch_histogram.clone(),
            queue_p50_us: percentile(&inner.queue_us.samples, 0.50),
            queue_p99_us: percentile(&inner.queue_us.samples, 0.99),
            execute_p50_us: percentile(&inner.execute_us.samples, 0.50),
            execute_p99_us: percentile(&inner.execute_us.samples, 0.99),
            modelled_p50_us: percentile(&inner.modelled_request_us.samples, 0.50),
            per_priority,
            per_device,
            modelled_makespan_us: makespan,
            encode_hits: encode.hits,
            encode_misses: encode.misses,
            encode_disk_loads: encode.disk_loads,
            encode_fresh: encode.fresh_encodes,
            encode_evictions: encode.evictions,
            encode_fresh_ms: encode.fresh_encode_ms,
            encode_disk_ms: encode.disk_load_ms,
            encode_warm_restored: encode.warm_restored,
            encode_warm_reencoded: encode.warm_reencoded,
            encode_warm_healed: encode.warm_healed,
            store_entries: encode.store_entries,
            store_bytes: encode.store_bytes,
            store_gc_removed: encode.store_gc_removed,
            encode_hit_rate: encode.hit_rate(),
            timing_hit_rate,
            wire: None,
            wire_reactors: Vec::new(),
            cluster: None,
        }
    }
}

/// Nearest-rank percentile of an unsorted sample set (the helper behind
/// every latency figure the server and the bench drivers print).
///
/// Defined for every input: an empty sample set yields 0, a single sample
/// yields that sample for every `q`, `q = 0` yields the minimum, `q = 1`
/// the maximum, and out-of-range or NaN `q` values are clamped into
/// `[0, 1]` instead of indexing out of bounds.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
    let mut sorted = samples.to_vec();
    // IEEE total order, not `partial_cmp(..).unwrap_or(Equal)`: treating
    // incomparable pairs as equal leaves the slice only partially sorted
    // around any NaN sample, so low quantiles could silently return
    // garbage. Under `total_cmp` every NaN sorts above every number, so a
    // NaN sample can only surface at the quantiles it actually occupies.
    sorted.sort_by(f64::total_cmp);
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn normal(waits: &[f64]) -> Vec<(Priority, f64)> {
        waits.iter().map(|&w| (Priority::Normal, w)).collect()
    }

    /// Memory-only cache counters: every miss was a fresh encode.
    fn enc(hits: u64, misses: u64) -> EncodeCacheStats {
        EncodeCacheStats { hits, misses, fresh_encodes: misses, ..Default::default() }
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
    }

    #[test]
    fn percentile_edge_cases_are_defined() {
        // Empty: 0 by definition.
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[], f64::NAN), 0.0);
        // One sample: that sample for every q.
        assert_eq!(percentile(&[7.0], 0.0), 7.0);
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
        assert_eq!(percentile(&[7.0], 1.0), 7.0);
        // q = 0 is the minimum, q = 1 the maximum.
        let v = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 3.0);
        // Out-of-range and NaN q clamp instead of panicking.
        assert_eq!(percentile(&v, -0.3), 1.0);
        assert_eq!(percentile(&v, 4.2), 3.0);
        assert_eq!(percentile(&v, f64::NAN), 1.0);
        assert_eq!(percentile(&v, f64::INFINITY), 3.0);
    }

    #[test]
    fn percentile_sorts_nan_samples_last_under_total_order() {
        // A NaN *sample* must not scramble the sort (the old
        // `partial_cmp(..).unwrap_or(Equal)` comparator left the slice
        // order comparator-dependent): every finite quantile stays exact
        // and NaN surfaces only at the very top.
        let v = [2.0, f64::NAN, 1.0, 3.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 2.0);
        assert_eq!(percentile(&v, 0.75), 3.0);
        assert!(percentile(&v, 1.0).is_nan());
        // All-NaN input is NaN at every quantile, not a panic.
        assert!(percentile(&[f64::NAN, f64::NAN], 0.5).is_nan());
        // -NaN < -inf < finite < +inf < +NaN in IEEE total order; the
        // negative NaN therefore pins the minimum, not the median.
        let v = [-f64::NAN, 5.0, 4.0];
        assert!(percentile(&v, 0.0).is_nan());
        assert_eq!(percentile(&v, 1.0), 5.0);
    }

    #[test]
    fn reservoir_is_deterministic_under_a_fixed_seed() {
        let mut a = Reservoir::new(16, 99);
        let mut b = Reservoir::new(16, 99);
        for i in 0..10_000 {
            a.push(f64::from(i));
            b.push(f64::from(i));
        }
        assert_eq!(a.samples, b.samples, "same seed + same stream = same sample");
        assert_eq!(a.seen, 10_000);
        let mut c = Reservoir::new(16, 100);
        for i in 0..10_000 {
            c.push(f64::from(i));
        }
        assert_ne!(a.samples, c.samples, "different seeds replace different slots");
    }

    #[test]
    fn collector_aggregates_batches() {
        let c = StatsCollector::new();
        c.record_batch(0, &normal(&[10.0, 20.0]), 100.0, 10.0, 5.0);
        c.record_batch(1, &normal(&[30.0]), 50.0, 9.0, 9.0);
        let s = c.snapshot(enc(3, 1), 0.75, &["gpu0".to_string(), "gpu1".to_string()]);
        assert_eq!(s.completed_requests, 3);
        assert_eq!(s.executed_batches, 2);
        assert_eq!(s.batch_histogram, vec![1, 1]); // one 1-batch, one 2-batch
        assert!((s.mean_batch_size - 1.5).abs() < 1e-12);
        assert_eq!(s.max_batch_size, 2);
        assert_eq!(s.queue_p50_us, 20.0);
        assert_eq!(s.execute_p99_us, 100.0);
        assert_eq!(s.modelled_p50_us, 5.0);
        assert!((s.encode_hit_rate - 0.75).abs() < 1e-12);
        assert_eq!(s.active_workers(), 2);
        assert!(s.throughput_rps > 0.0);
        // Device accounting: busy 10 us vs 9 us, makespan 10 us.
        assert_eq!(s.per_device.len(), 2);
        assert!((s.modelled_makespan_us - 10.0).abs() < 1e-12);
        assert!((s.per_device[0].utilisation - 1.0).abs() < 1e-12);
        assert!((s.per_device[1].utilisation - 0.9).abs() < 1e-12);
        assert_eq!(s.per_device[0].name, "gpu0");
    }

    #[test]
    fn per_priority_latency_streams_are_split() {
        let c = StatsCollector::new();
        c.record_batch(0, &[(Priority::High, 5.0), (Priority::Low, 500.0)], 40.0, 8.0, 4.0);
        c.record_batch(0, &[(Priority::Low, 700.0)], 60.0, 8.0, 8.0);
        let s = c.snapshot(enc(0, 0), 0.0, &["gpu0".to_string()]);
        let high = s.for_priority(Priority::High);
        let low = s.for_priority(Priority::Low);
        assert_eq!(high.completed, 1);
        assert_eq!(low.completed, 2);
        assert_eq!(high.queue_p99_us, 5.0);
        assert_eq!(low.queue_p50_us, 500.0);
        assert_eq!(low.queue_p99_us, 700.0);
        assert_eq!(s.for_priority(Priority::Normal).completed, 0);
        assert_eq!(s.for_priority(Priority::Normal).queue_p99_us, 0.0);
        assert!(high.queue_p99_us < low.queue_p99_us);
        assert_eq!(high.execute_p50_us, 40.0);
    }

    #[test]
    fn reservoir_bounds_memory_and_keeps_percentiles_sane() {
        let c = StatsCollector::new();
        // Far more requests than the cap: a uniform latency ramp 0..100_000.
        for i in 0..100_000u64 {
            c.record_batch(0, &normal(&[i as f64]), i as f64, 1.0, 1.0);
        }
        let inner = c.inner.lock().unwrap();
        assert_eq!(inner.queue_us.samples.len(), SAMPLE_CAP);
        assert_eq!(inner.queue_us.seen, 100_000);
        drop(inner);
        let s = c.snapshot(enc(0, 0), 0.0, &["gpu0".to_string()]);
        assert_eq!(s.completed_requests, 100_000);
        // Sampled percentiles of a uniform ramp stay near the true values.
        assert!((s.queue_p50_us - 50_000.0).abs() < 5_000.0, "p50 {}", s.queue_p50_us);
        assert!(s.queue_p99_us > 90_000.0, "p99 {}", s.queue_p99_us);
    }

    #[test]
    fn snapshot_of_idle_server_is_zeroed() {
        let c = StatsCollector::new();
        let s = c.snapshot(enc(0, 0), 0.0, &["gpu0".to_string()]);
        assert_eq!(s.completed_requests, 0);
        assert_eq!(s.mean_batch_size, 0.0);
        assert_eq!(s.encode_hit_rate, 0.0);
        assert_eq!(s.modelled_makespan_us, 0.0);
        assert_eq!(s.per_device[0].utilisation, 0.0);
        assert!(s.render().contains("requests: 0"));
    }

    #[test]
    fn render_of_populated_snapshot_covers_every_line_in_order() {
        let text = crate::telemetry::export::sample_stats().render();
        // Each fragment must appear after the previous one: the report's
        // line order is part of its (loose) contract.
        let fragments = [
            "requests: 120",
            "batches: 30",
            "throughput: 240.5 req/s",
            "batch size: mean 4.00  max 8",
            "queue wait us: p50 150  p99 900",
            "priority low",
            "shed 6",
            "priority normal",
            "shed 2",
            "priority high",
            "shed 0",
            "modelled GPU us/request: p50 85.5",
            "Tesla V100",
            "A100",
            "encode cache: 28 hits / 4 misses (88% hit rate)",
            "misses paid: 1 fresh encodes (120.5 ms) + 3 disk restores (6.2 ms)   evictions: 2",
            "store: 4 artifacts / 88000 B   warm boot: 3 restored + 1 re-encoded + 1 healed   gc removed: 2",
            "active workers: 2",
            "wire: 5 conns (2 open, 1 rejected)",
            "frames 120 in / 118 out (2 errors)",
            "44000 B in / 52000 B out",
            "decode errors: 1   requests rejected: 1   in flight: 0",
            "shed 4 (3 low / 1 normal / 0 high)",
            "cluster: node 2  shard map v5  peers 2/3 alive",
            "redirects: 7   failover serves: 3",
            "hellos: 12 (1 auth failures)",
            "peer probes: 40 (4 failed)",
        ];
        let mut cursor = 0;
        for fragment in fragments {
            match text[cursor..].find(fragment) {
                Some(at) => cursor += at + fragment.len(),
                None => panic!("missing or out of order: {fragment:?}\nreport:\n{text}"),
            }
        }
    }

    #[test]
    fn merged_wire_stats_sum_every_field() {
        let a = WireStats {
            connections_accepted: 3,
            connections_rejected: 1,
            connections_closed: 2,
            frames_received: 40,
            frames_sent: 38,
            error_frames_sent: 2,
            bytes_received: 4000,
            bytes_sent: 5000,
            decode_errors: 1,
            requests_rejected: 1,
            in_flight: 2,
            outbound_overflows: 1,
            shed_low: 3,
            shed_normal: 1,
            shed_high: 0,
        };
        let b = WireStats {
            connections_accepted: 5,
            connections_rejected: 0,
            connections_closed: 4,
            frames_received: 60,
            frames_sent: 61,
            error_frames_sent: 0,
            bytes_received: 6000,
            bytes_sent: 7000,
            decode_errors: 0,
            requests_rejected: 0,
            in_flight: 3,
            outbound_overflows: 0,
            shed_low: 2,
            shed_normal: 0,
            shed_high: 1,
        };
        let merged = WireStats::merged(&[a.clone(), b.clone()]);
        assert_eq!(merged.connections_accepted, 8);
        assert_eq!(merged.connections_rejected, 1);
        assert_eq!(merged.connections_closed, 6);
        assert_eq!(merged.open_connections(), 2);
        assert_eq!(merged.frames_received, 100);
        assert_eq!(merged.frames_sent, 99);
        assert_eq!(merged.error_frames_sent, 2);
        assert_eq!(merged.bytes_received, 10_000);
        assert_eq!(merged.bytes_sent, 12_000);
        assert_eq!(merged.decode_errors, 1);
        assert_eq!(merged.requests_rejected, 1);
        assert_eq!(merged.in_flight, 5);
        assert_eq!(merged.outbound_overflows, 1);
        assert_eq!(merged.shed_low, 5);
        assert_eq!(merged.shed_normal, 1);
        assert_eq!(merged.shed_high, 1);
        assert_eq!(merged.shed_total(), 7);
        assert_eq!(merged.shed_for(Priority::Low), 5);
        // Degenerate shapes behave: empty = zero, singleton = identity.
        assert_eq!(WireStats::merged(&[]), WireStats::default());
        assert_eq!(WireStats::merged(std::slice::from_ref(&a)), a);
    }

    #[test]
    fn record_shed_surfaces_per_priority_even_with_zero_completions() {
        let c = StatsCollector::new();
        c.record_shed(Priority::Low);
        c.record_shed(Priority::Low);
        c.record_shed(Priority::Normal);
        let s = c.snapshot(enc(0, 0), 0.0, &["gpu0".to_string()]);
        assert_eq!(s.total_shed(), 3);
        assert_eq!(s.for_priority(Priority::Low).shed, 2);
        assert_eq!(s.for_priority(Priority::Normal).shed, 1);
        assert_eq!(s.for_priority(Priority::High).shed, 0);
        assert_eq!(s.for_priority(Priority::Low).completed, 0);
        // A class that only shed still earns its report line.
        let text = s.render();
        assert!(text.contains("priority low"), "report:\n{text}");
        assert!(text.contains("shed 2"), "report:\n{text}");
        assert!(!text.contains("priority high"), "report:\n{text}");
    }

    #[test]
    fn wire_collector_counts_shed_per_priority() {
        let c = WireStatsCollector::new();
        c.request_shed(Priority::Low);
        c.request_shed(Priority::High);
        c.request_shed(Priority::Low);
        let s = c.snapshot();
        assert_eq!(s.shed_low, 2);
        assert_eq!(s.shed_normal, 0);
        assert_eq!(s.shed_high, 1);
        assert_eq!(s.shed_total(), 3);
        assert_eq!(s.shed_for(Priority::High), 1);
    }

    #[test]
    fn warm_and_store_counters_flow_into_the_snapshot_and_render() {
        let c = StatsCollector::new();
        let encode = EncodeCacheStats {
            warm_restored: 5,
            warm_healed: 1,
            store_entries: 6,
            store_bytes: 1234,
            store_gc_removed: 3,
            ..Default::default()
        };
        let s = c.snapshot(encode, 0.0, &["gpu0".to_string()]);
        assert_eq!(s.encode_warm_restored, 5);
        assert_eq!(s.encode_warm_reencoded, 0);
        assert_eq!(s.encode_warm_healed, 1);
        assert_eq!(s.store_entries, 6);
        assert_eq!(s.store_bytes, 1234);
        assert_eq!(s.store_gc_removed, 3);
        let text = s.render();
        assert!(
            text.contains(
                "store: 6 artifacts / 1234 B   warm boot: 5 restored + 0 re-encoded + 1 healed   gc removed: 3"
            ),
            "report:\n{text}"
        );
        // Without store or warm activity the line is omitted entirely.
        let idle = c.snapshot(enc(0, 0), 0.0, &["gpu0".to_string()]).render();
        assert!(!idle.contains("store:"), "report:\n{idle}");
    }

    #[test]
    fn render_mentions_key_metrics() {
        let c = StatsCollector::new();
        c.record_batch(0, &[(Priority::High, 1.0)], 2.0, 3.0, 3.0);
        let text = c.snapshot(enc(1, 1), 0.5, &["Tesla V100".to_string()]).render();
        assert!(text.contains("throughput"));
        assert!(text.contains("encode cache"));
        assert!(text.contains("active workers"));
        assert!(text.contains("priority high"));
        assert!(text.contains("Tesla V100"));
        assert!(text.contains("utilisation"));
    }
}
