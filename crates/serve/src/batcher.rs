//! Dynamic, SLO-aware request batching.
//!
//! Requests accumulate in one arrival-ordered queue; a worker (or the
//! device dispatcher) asking for work receives a **batch**: up to
//! `max_batch` queued requests sharing one `(model, sparsity)` key. A
//! compatibility class is released as soon as it reaches `max_batch`
//! requests, when any of its members is about to miss its queue deadline
//! (the per-request SLO capped at `max_queue_wait`), or when the scheduler
//! is draining for shutdown — so latency is bounded even under trickle
//! traffic, full batches of one model never wait behind an unfull head of
//! another, and unrelated models queued behind the head cannot starve it.
//!
//! Two SLO-aware refinements over a plain FIFO batcher:
//!
//! * **release order** — when several classes are releasable, the one whose
//!   most urgent member is closest to (or furthest past) its deadline goes
//!   first, higher priority breaking ties; and
//! * **extraction order** — when a class holds more requests than fit in
//!   one batch, deadline-expired requests go first (so nobody in SLO can
//!   starve someone already past it), then higher-[`Priority`] requests,
//!   FIFO within one priority level — latency-critical traffic jumps the
//!   queue without reordering its own service class, and under saturation
//!   (everything expired) the order degrades to strict priority.

use std::cmp::Reverse;
use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use dsstc_tensor::Matrix;

use crate::request::{InferResponse, ModelKey, Priority};
use crate::telemetry::{RequestTrace, Stage};

/// Batching policy knobs (a subset of [`crate::ServeConfig`]).
#[derive(Clone, Copy, Debug)]
pub struct BatchPolicy {
    /// Largest number of requests merged into one batch.
    pub max_batch: usize,
    /// How long any queued request may wait before its batch is flushed
    /// even if it is not full (also the cap on per-request SLO deadlines).
    pub max_queue_wait: Duration,
}

/// One queued request with its response channel.
#[derive(Debug)]
pub(crate) struct PendingRequest {
    /// Server-assigned request id.
    pub id: u64,
    /// Encode-cache key (batch compatibility class).
    pub key: ModelKey,
    /// Scheduling priority.
    pub priority: Priority,
    /// Per-request queue-wait SLO; capped at the policy's `max_queue_wait`.
    pub slo: Option<Duration>,
    /// Input features.
    pub features: Matrix,
    /// Where the response goes.
    pub response_tx: Sender<InferResponse>,
    /// When the request entered the queue.
    pub enqueued: Instant,
    /// The request's staged timeline, stamped as it moves through the
    /// pipeline and returned on its [`InferResponse`].
    pub trace: RequestTrace,
}

/// A group of compatible requests released to one worker.
#[derive(Debug)]
pub(crate) struct Batch {
    /// The shared `(model, sparsity)` key.
    pub key: ModelKey,
    /// The member requests: deadline-expired members first, then by
    /// priority (highest first), FIFO within a priority.
    pub requests: Vec<PendingRequest>,
}

impl Batch {
    /// Number of member requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Total feature rows across member requests.
    pub fn total_rows(&self) -> usize {
        self.requests.iter().map(|r| r.features.rows()).sum()
    }
}

#[derive(Debug)]
struct QueueState {
    queue: VecDeque<PendingRequest>,
    open: bool,
}

/// The dynamic batching queue shared by the server front-end and the worker
/// pool.
#[derive(Debug)]
pub struct BatchScheduler {
    policy: BatchPolicy,
    state: Mutex<QueueState>,
    cv: Condvar,
}

/// Per-compatibility-class aggregate used to decide what to release.
struct ClassAgg {
    key: ModelKey,
    count: usize,
    /// Earliest queue deadline among members (the member closest to — or
    /// furthest past — its SLO).
    min_deadline: Instant,
    /// Highest member priority (release-order tie-break).
    priority: Priority,
}

impl BatchScheduler {
    /// Creates an open scheduler.
    ///
    /// # Panics
    /// Panics if `max_batch` is zero.
    pub fn new(policy: BatchPolicy) -> Self {
        assert!(policy.max_batch > 0, "batches need at least one request");
        BatchScheduler {
            policy,
            state: Mutex::new(QueueState { queue: VecDeque::new(), open: true }),
            cv: Condvar::new(),
        }
    }

    /// The batching policy in force.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Number of requests currently queued.
    pub fn queue_len(&self) -> usize {
        self.state.lock().expect("scheduler mutex poisoned").queue.len()
    }

    /// Whether the scheduler still accepts requests.
    pub fn is_open(&self) -> bool {
        self.state.lock().expect("scheduler mutex poisoned").open
    }

    /// The absolute instant by which `request` should leave the queue: its
    /// SLO (capped at `max_queue_wait`) past its enqueue time.
    fn deadline(&self, request: &PendingRequest) -> Instant {
        let wait = request
            .slo
            .map_or(self.policy.max_queue_wait, |slo| slo.min(self.policy.max_queue_wait));
        request.enqueued + wait
    }

    /// Enqueues one request. Returns `false` (dropping the request) if the
    /// scheduler has been shut down.
    pub(crate) fn enqueue(&self, mut request: PendingRequest) -> bool {
        let mut state = self.state.lock().expect("scheduler mutex poisoned");
        if !state.open {
            return false;
        }
        request.trace.record(Stage::Enqueued);
        state.queue.push_back(request);
        // Wake every waiting worker: some class may just have become full,
        // and a worker watching a deadline needs to re-evaluate.
        self.cv.notify_all();
        true
    }

    /// Blocks until a batch is ready (or the scheduler is shut down **and**
    /// drained, in which case `None` tells the worker to exit).
    ///
    /// A class is releasable as soon as it holds `max_batch` compatible
    /// requests (so a full batch never waits on anyone's deadline), as soon
    /// as any of its members reaches its queue deadline, or unconditionally
    /// while draining. Among releasable classes, the one whose most urgent
    /// member is closest to violation goes first.
    pub(crate) fn next_batch(&self) -> Option<Batch> {
        let mut state = self.state.lock().expect("scheduler mutex poisoned");
        loop {
            if state.queue.is_empty() {
                if !state.open {
                    return None;
                }
                state = self.cv.wait(state).expect("scheduler mutex poisoned");
                continue;
            }
            let now = Instant::now();
            let aggs = self.aggregate(&state.queue);
            if let Some(key) = Self::release_key(&aggs, now, self.policy.max_batch, state.open) {
                return Some(self.extract(&mut state.queue, key, now));
            }
            // Nothing full or expired yet: sleep until the most urgent
            // deadline or the next enqueue, whichever comes first.
            let earliest = aggs.iter().map(|a| a.min_deadline).min().expect("non-empty queue");
            let wait = earliest.saturating_duration_since(now);
            let (next, _timed_out) =
                self.cv.wait_timeout(state, wait).expect("scheduler mutex poisoned");
            state = next;
        }
    }

    /// Builds the per-class aggregates in first-arrival order. Queues hold
    /// at most a few distinct `(model, sparsity)` classes, so the linear
    /// scan with a small Vec beats hashing.
    fn aggregate(&self, queue: &VecDeque<PendingRequest>) -> Vec<ClassAgg> {
        let mut aggs: Vec<ClassAgg> = Vec::new();
        for request in queue {
            let deadline = self.deadline(request);
            match aggs.iter_mut().find(|a| a.key == request.key) {
                Some(agg) => {
                    agg.count += 1;
                    agg.min_deadline = agg.min_deadline.min(deadline);
                    agg.priority = agg.priority.max(request.priority);
                }
                None => aggs.push(ClassAgg {
                    key: request.key,
                    count: 1,
                    min_deadline: deadline,
                    priority: request.priority,
                }),
            }
        }
        aggs
    }

    /// The class to release now, if any: releasable classes (full, past a
    /// member deadline, or draining) ordered by urgency — earliest deadline
    /// first, higher priority breaking ties, first arrival breaking those.
    fn release_key(
        aggs: &[ClassAgg],
        now: Instant,
        max_batch: usize,
        open: bool,
    ) -> Option<ModelKey> {
        aggs.iter()
            .filter(|a| !open || a.count >= max_batch || a.min_deadline <= now)
            .min_by_key(|a| (a.min_deadline, Reverse(a.priority)))
            .map(|a| a.key)
    }

    /// Stops accepting requests; queued work is still drained by
    /// `next_batch`.
    pub fn shutdown(&self) {
        let mut state = self.state.lock().expect("scheduler mutex poisoned");
        state.open = false;
        self.cv.notify_all();
    }

    /// Removes up to `max_batch` requests with `key` from the queue. The
    /// selection (and batch member) order is:
    ///
    /// 1. requests already past their queue deadline — so a fresh flood of
    ///    higher-priority (but still in-SLO) arrivals can never starve a
    ///    deadline-expired request out of batch after batch;
    /// 2. then unexpired requests.
    ///
    /// Inside each group: highest priority first, then earliest deadline,
    /// then arrival order. Same-priority requests with equal SLOs
    /// therefore always stay FIFO (equal SLOs expire in arrival order),
    /// and when overload leaves *everything* expired the order degrades to
    /// strict priority — lower classes lose their latency bound only once
    /// the pool is saturated with expired higher-priority work. The rest
    /// of the queue keeps its arrival order.
    fn extract(&self, queue: &mut VecDeque<PendingRequest>, key: ModelKey, now: Instant) -> Batch {
        let mut order: Vec<usize> = (0..queue.len()).filter(|&i| queue[i].key == key).collect();
        order.sort_by(|&a, &b| {
            let (da, db) = (self.deadline(&queue[a]), self.deadline(&queue[b]));
            let expired_first = (db <= now).cmp(&(da <= now));
            let priority_desc = queue[b].priority.cmp(&queue[a].priority);
            expired_first.then(priority_desc).then(da.cmp(&db)).then(a.cmp(&b))
        });
        order.truncate(self.policy.max_batch);
        // Remove back-to-front so indices stay valid, then restore the
        // selection order.
        let mut removal = order.clone();
        removal.sort_unstable_by(|a, b| b.cmp(a));
        let mut taken: Vec<(usize, PendingRequest)> =
            removal.into_iter().map(|i| (i, queue.remove(i).expect("index in bounds"))).collect();
        let mut requests = Vec::with_capacity(order.len());
        for index in &order {
            let at = taken.iter().position(|(i, _)| i == index).expect("selected index");
            let mut request = taken.swap_remove(at).1;
            request.trace.record(Stage::Released);
            requests.push(request);
        }
        debug_assert!(!requests.is_empty(), "extract called with a matching member");
        Batch { key, requests }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ModelId;
    use std::sync::mpsc;
    use std::sync::Arc;

    fn policy(max_batch: usize, wait_ms: u64) -> BatchPolicy {
        BatchPolicy { max_batch, max_queue_wait: Duration::from_millis(wait_ms) }
    }

    fn request(model: ModelId) -> PendingRequest {
        let (tx, _rx) = mpsc::channel();
        // Tests keep the receiver alive only when they assert on responses.
        std::mem::forget(_rx);
        PendingRequest {
            id: 0,
            key: ModelKey::new(model, None),
            priority: Priority::Normal,
            slo: None,
            features: Matrix::zeros(2, 8),
            response_tx: tx,
            enqueued: Instant::now(),
            trace: RequestTrace::new(),
        }
    }

    fn prioritised(model: ModelId, id: u64, priority: Priority) -> PendingRequest {
        PendingRequest { id, priority, ..request(model) }
    }

    #[test]
    fn full_batches_never_exceed_max_batch() {
        let s = BatchScheduler::new(policy(4, 60_000));
        for _ in 0..10 {
            assert!(s.enqueue(request(ModelId::BertBase)));
        }
        let sizes: Vec<usize> = (0..2).map(|_| s.next_batch().unwrap().len()).collect();
        assert_eq!(sizes, vec![4, 4]);
        assert_eq!(s.queue_len(), 2);
        // The remaining two are not a full batch; they flush on shutdown.
        s.shutdown();
        assert_eq!(s.next_batch().unwrap().len(), 2);
        assert!(s.next_batch().is_none());
    }

    #[test]
    fn deadline_flushes_a_partial_batch() {
        let s = BatchScheduler::new(policy(64, 30));
        let t0 = Instant::now();
        assert!(s.enqueue(request(ModelId::ResNet50)));
        let batch = s.next_batch().unwrap();
        let waited = t0.elapsed();
        assert_eq!(batch.len(), 1);
        assert!(waited >= Duration::from_millis(25), "flushed after {waited:?}");
        assert!(waited < Duration::from_secs(5), "flushed after {waited:?}");
    }

    #[test]
    fn per_request_slo_flushes_before_max_queue_wait() {
        // max_queue_wait is a whole minute, but the request carries a 20 ms
        // SLO: its batch must flush on the SLO, not the policy cap.
        let s = BatchScheduler::new(policy(64, 60_000));
        let mut r = request(ModelId::BertBase);
        r.slo = Some(Duration::from_millis(20));
        let t0 = Instant::now();
        assert!(s.enqueue(r));
        let batch = s.next_batch().unwrap();
        let waited = t0.elapsed();
        assert_eq!(batch.len(), 1);
        assert!(waited >= Duration::from_millis(15), "flushed after {waited:?}");
        assert!(waited < Duration::from_secs(5), "flushed after {waited:?}");
    }

    #[test]
    fn extraction_prefers_high_priority_fifo_within_priority() {
        // Six compatible requests, batches of three: the two High requests
        // and the oldest Normal one go first, each class FIFO internally.
        let s = BatchScheduler::new(policy(3, 60_000));
        s.enqueue(prioritised(ModelId::BertBase, 0, Priority::Normal));
        s.enqueue(prioritised(ModelId::BertBase, 1, Priority::High));
        s.enqueue(prioritised(ModelId::BertBase, 2, Priority::Low));
        s.enqueue(prioritised(ModelId::BertBase, 3, Priority::High));
        s.enqueue(prioritised(ModelId::BertBase, 4, Priority::Normal));
        s.enqueue(prioritised(ModelId::BertBase, 5, Priority::Low));
        s.shutdown();
        let first: Vec<u64> = s.next_batch().unwrap().requests.iter().map(|r| r.id).collect();
        assert_eq!(first, vec![1, 3, 0], "high first (FIFO), then oldest normal");
        let second: Vec<u64> = s.next_batch().unwrap().requests.iter().map(|r| r.id).collect();
        assert_eq!(second, vec![4, 2, 5], "remaining normal, then lows FIFO");
    }

    #[test]
    fn an_expired_low_priority_request_is_not_starved_by_a_high_priority_flood() {
        // One Low request with a tiny SLO, buried under two full batches of
        // High traffic on the same model. Once its deadline expires it must
        // ride in the very next released batch, not wait behind every High
        // request.
        let s = BatchScheduler::new(policy(3, 60_000));
        let mut low = prioritised(ModelId::BertBase, 99, Priority::Low);
        low.slo = Some(Duration::from_millis(5));
        s.enqueue(low);
        for id in 0..6 {
            s.enqueue(prioritised(ModelId::BertBase, id, Priority::High));
        }
        std::thread::sleep(Duration::from_millis(10));
        let batch = s.next_batch().unwrap();
        assert_eq!(batch.requests[0].id, 99, "expired request leads the batch");
        assert_eq!(batch.requests[0].priority, Priority::Low);
        // The rest of the slots still go to the highest priorities, FIFO.
        let tail: Vec<u64> = batch.requests[1..].iter().map(|r| r.id).collect();
        assert_eq!(tail, vec![0, 1]);
        s.shutdown();
        while s.next_batch().is_some() {}
    }

    #[test]
    fn release_prefers_the_class_closest_to_violation() {
        // Two unfull classes; the BERT member has the tighter SLO, so even
        // though ResNet-50 arrived first, BERT's batch is released first
        // once deadlines drive the flush.
        let s = BatchScheduler::new(policy(8, 60));
        let mut early = request(ModelId::BertBase);
        early.slo = Some(Duration::from_millis(10));
        s.enqueue(request(ModelId::ResNet50));
        s.enqueue(early);
        let first = s.next_batch().unwrap();
        assert_eq!(first.key.model, ModelId::BertBase);
        s.shutdown();
        assert_eq!(s.next_batch().unwrap().key.model, ModelId::ResNet50);
    }

    #[test]
    fn batches_group_by_key_without_starving_the_head() {
        let s = BatchScheduler::new(policy(3, 60_000));
        s.enqueue(request(ModelId::BertBase));
        s.enqueue(request(ModelId::ResNet50));
        s.enqueue(request(ModelId::BertBase));
        s.enqueue(request(ModelId::ResNet50));
        s.enqueue(request(ModelId::BertBase));
        // Head is BERT: its three compatible requests batch together.
        let b1 = s.next_batch().unwrap();
        assert_eq!(b1.key.model, ModelId::BertBase);
        assert_eq!(b1.len(), 3);
        // ResNet-50 moved to the head; drain it via shutdown flush.
        s.shutdown();
        let b2 = s.next_batch().unwrap();
        assert_eq!(b2.key.model, ModelId::ResNet50);
        assert_eq!(b2.len(), 2);
    }

    #[test]
    fn a_full_batch_behind_an_unfull_head_releases_immediately() {
        // Head is a lone ResNet-50 request with a long deadline; a FULL
        // BERT batch arrives behind it and must not wait for that deadline.
        let s = BatchScheduler::new(policy(3, 60_000));
        s.enqueue(request(ModelId::ResNet50));
        for _ in 0..3 {
            s.enqueue(request(ModelId::BertBase));
        }
        let t0 = Instant::now();
        let batch = s.next_batch().unwrap();
        assert_eq!(batch.key.model, ModelId::BertBase);
        assert_eq!(batch.len(), 3);
        assert!(t0.elapsed() < Duration::from_secs(5), "released without waiting on the head");
        // The head is still queued and flushes on shutdown.
        s.shutdown();
        assert_eq!(s.next_batch().unwrap().key.model, ModelId::ResNet50);
    }

    #[test]
    fn different_sparsity_overrides_do_not_batch_together() {
        let s = BatchScheduler::new(policy(8, 60_000));
        let mut sparse = request(ModelId::RnnLm);
        sparse.key = ModelKey::new(ModelId::RnnLm, Some(0.9));
        s.enqueue(request(ModelId::RnnLm));
        s.enqueue(sparse);
        s.shutdown();
        assert_eq!(s.next_batch().unwrap().len(), 1);
        assert_eq!(s.next_batch().unwrap().len(), 1);
    }

    #[test]
    fn enqueue_after_shutdown_is_rejected() {
        let s = BatchScheduler::new(policy(4, 10));
        s.shutdown();
        assert!(!s.enqueue(request(ModelId::Vgg16)));
        assert!(!s.is_open());
        assert!(s.next_batch().is_none());
    }

    #[test]
    fn total_rows_sums_member_features() {
        let s = BatchScheduler::new(policy(4, 60_000));
        s.enqueue(request(ModelId::BertBase));
        s.enqueue(request(ModelId::BertBase));
        s.shutdown();
        let batch = s.next_batch().unwrap();
        assert_eq!(batch.total_rows(), 4); // two requests x two rows
    }

    #[test]
    fn concurrent_producers_and_consumers_preserve_every_request() {
        let s = Arc::new(BatchScheduler::new(policy(5, 5)));
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        assert!(s.enqueue(request(ModelId::BertBase)));
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut seen = 0usize;
                    while let Some(batch) = s.next_batch() {
                        assert!(batch.len() <= 5);
                        seen += batch.len();
                    }
                    seen
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        // Give consumers a moment to drain, then close.
        while s.queue_len() > 0 {
            std::thread::yield_now();
        }
        s.shutdown();
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    /// Property tests: arbitrary interleavings of enqueue / next_batch over
    /// mixed models, priorities and SLOs never violate the scheduler's
    /// invariants. The case count follows `PROPTEST_CASES` (CI pins 64).
    mod props {
        use super::*;
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        use std::collections::HashMap;

        /// Wall-clock slack allowed on top of `max_queue_wait` for the
        /// release-latency bound: one extraction cycle (the batch released
        /// ahead of the measured one) plus scheduler wake-up and CI timer
        /// jitter. Generous so the property never flakes on a loaded
        /// machine, yet tight enough to catch real starvation.
        const CYCLE_SLACK: Duration = Duration::from_millis(500);

        const MODELS: [ModelId; 3] = [ModelId::BertBase, ModelId::ResNet50, ModelId::RnnLm];

        fn check_batch(
            batch: &Batch,
            max_batch: usize,
            max_queue_wait: Duration,
            released: &mut HashMap<(ModelKey, Priority), u64>,
            bound_applies: bool,
        ) {
            let now = Instant::now();
            prop_assert!(!batch.requests.is_empty());
            prop_assert!(batch.len() <= max_batch, "batch of {} > {max_batch}", batch.len());
            for r in &batch.requests {
                prop_assert_eq!(r.key, batch.key, "mixed keys in one batch");
                // Same-priority requests within a model are served FIFO:
                // ids are assigned in enqueue order, so per (key, priority)
                // they must be released in increasing order.
                let slot = released.entry((r.key, r.priority)).or_insert(0);
                prop_assert!(
                    r.id >= *slot,
                    "priority {:?} of {:?} released out of order: {} after {}",
                    r.priority,
                    r.key.model,
                    r.id,
                    *slot
                );
                *slot = r.id + 1;
                if bound_applies {
                    let waited = now.duration_since(r.enqueued);
                    prop_assert!(
                        waited <= max_queue_wait + CYCLE_SLACK,
                        "request {} waited {waited:?} (bound {max_queue_wait:?} + cycle)",
                        r.id
                    );
                }
            }
        }

        proptest! {
            #[test]
            fn interleaved_enqueue_and_extract_hold_all_invariants(
                seed in any::<u64>(),
                max_batch in 1usize..=5,
                ops in 12usize..=40,
            ) {
                let wait = Duration::from_millis(2);
                let s = BatchScheduler::new(BatchPolicy { max_batch, max_queue_wait: wait });
                let mut rng = StdRng::seed_from_u64(seed);
                let mut next_id = 0u64;
                let mut enqueued = 0usize;
                let mut drained = 0usize;
                let mut released: HashMap<(ModelKey, Priority), u64> = HashMap::new();
                for _ in 0..ops {
                    let extract = s.queue_len() > 0 && rng.random_bool(0.4);
                    if extract {
                        let batch = s.next_batch().unwrap();
                        drained += batch.len();
                        check_batch(&batch, max_batch, wait, &mut released, true);
                    } else {
                        let model = MODELS[rng.random_range(0usize..MODELS.len())];
                        let priority = Priority::ALL[rng.random_range(0usize..3)];
                        // One SLO per service class: FIFO-within-priority is
                        // only a meaningful invariant when a class shares a
                        // deadline policy (mixed SLOs inside one class are
                        // legitimately served earliest-deadline-first).
                        let slo = match priority {
                            Priority::High => Some(Duration::from_micros(700)),
                            Priority::Normal => None,
                            Priority::Low => Some(Duration::from_micros(1500)),
                        };
                        let mut r = request(model);
                        r.id = next_id;
                        r.priority = priority;
                        r.slo = slo;
                        next_id += 1;
                        prop_assert!(s.enqueue(r));
                        enqueued += 1;
                    }
                }
                // Drain: every request is released exactly once, under the
                // same size / purity / FIFO invariants (the latency bound
                // does not apply to the shutdown flush).
                s.shutdown();
                while let Some(batch) = s.next_batch() {
                    drained += batch.len();
                    check_batch(&batch, max_batch, wait, &mut released, false);
                }
                prop_assert_eq!(drained, enqueued, "requests lost or duplicated");
                prop_assert_eq!(s.queue_len(), 0);
            }
        }
    }
}
