//! CUTLASS-style dense GEMM on the inner-product Tensor Core.
//!
//! This is the baseline every figure of the paper normalises against. The
//! profile charges one warp-level `HMMA` issue slot per 128 MACs (two Tensor
//! Cores of 64 FP16 MACs each work on one warp instruction), stages operand
//! tiles through shared memory, and estimates DRAM traffic with the
//! wave-based L2-reuse model of [`crate::tiling`].

use dsstc_sim::{GpuConfig, WorkloadProfile};
use dsstc_tensor::{GemmShape, Matrix};

use crate::tiling::{GemmTiling, TrafficInputs};

/// Dense GEMM kernel model (CUTLASS / cuBLAS stand-in).
#[derive(Clone, Debug)]
pub struct DenseGemm {
    config: GpuConfig,
    tiling: GemmTiling,
}

impl DenseGemm {
    /// Creates a dense GEMM model for the given GPU.
    pub fn new(config: GpuConfig) -> Self {
        DenseGemm { config, tiling: GemmTiling::cutlass_dense() }
    }

    /// Overrides the tiling (used by ablation benches).
    pub fn with_tiling(mut self, tiling: GemmTiling) -> Self {
        self.tiling = tiling;
        self
    }

    /// The tiling in use.
    pub fn tiling(&self) -> &GemmTiling {
        &self.tiling
    }

    /// MACs retired per issued warp-level tensor instruction.
    pub fn macs_per_instruction(&self) -> u64 {
        (self.config.macs_per_tc_instruction * self.config.tensor_cores_per_sub_core) as u64
    }

    /// Builds the workload profile of a dense `M x N x K` GEMM. The operand
    /// contents do not matter for a dense kernel — only the shape does.
    pub fn profile(&self, shape: &GemmShape) -> WorkloadProfile {
        let a_bytes = (shape.m * shape.k) as u64 * 2;
        let b_bytes = (shape.k * shape.n) as u64 * 2;
        self.profile_with_operand_bytes(shape, a_bytes, b_bytes)
    }

    /// Like [`Self::profile`] but with explicit operand footprints in DRAM.
    ///
    /// The implicit-im2col convolution schemes use this: the GEMM's logical A
    /// operand is the lowered feature map, but what is actually resident in
    /// DRAM (and therefore read) is the original, non-expanded feature map.
    pub fn profile_with_operand_bytes(
        &self,
        shape: &GemmShape,
        a_bytes: u64,
        b_bytes: u64,
    ) -> WorkloadProfile {
        let mut p = WorkloadProfile::new(format!("dense-gemm-{shape}"));
        p.hmma_instructions = shape.macs().div_ceil(self.macs_per_instruction());
        p.thread_blocks = self.tiling.grid_blocks(shape);

        let d_bytes = (shape.m * shape.n) as u64 * 4;
        let traffic = self.tiling.dram_traffic(&TrafficInputs {
            a_bytes,
            b_bytes,
            d_bytes,
            shape: *shape,
            l2_bytes: self.config.l2_bytes as u64,
            concurrent_blocks: (self.config.num_sms * self.config.max_blocks_per_sm) as u64,
        });
        p.dram_bytes_read = traffic.read_bytes;
        p.dram_bytes_written = traffic.write_bytes;

        // Every k-slice of every block stages its A and B tiles through
        // shared memory once.
        let k_iters = shape.k.div_ceil(self.tiling.block_k) as u64;
        let tile_bytes = ((self.tiling.block_m * self.tiling.block_k
            + self.tiling.block_k * self.tiling.block_n)
            * 2) as u64;
        p.shared_bytes = p.thread_blocks * k_iters * tile_bytes;
        // Address generation and ld/st issue: a handful of scalar ops per
        // staged tile row.
        p.scalar_ops =
            p.thread_blocks * k_iters * (self.tiling.block_m + self.tiling.block_n) as u64;
        p
    }

    /// Functionally computes `A * B` (FP16 operands, FP32 accumulation) and
    /// returns the result together with the profile.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn execute(&self, a: &Matrix, b: &Matrix) -> (Matrix, WorkloadProfile) {
        let shape = GemmShape::new(a.rows(), b.cols(), a.cols());
        let out = a.matmul_f16(b);
        (out, self.profile(&shape))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsstc_sim::GpuTimingModel;
    use dsstc_tensor::SparsityPattern;

    fn kernel() -> DenseGemm {
        DenseGemm::new(GpuConfig::v100())
    }

    #[test]
    fn macs_per_instruction_is_128() {
        assert_eq!(kernel().macs_per_instruction(), 128);
    }

    #[test]
    fn profile_counts_match_shape() {
        let p = kernel().profile(&GemmShape::new(4096, 4096, 4096));
        assert_eq!(p.hmma_instructions, 4096u64 * 4096 * 4096 / 128);
        assert_eq!(p.thread_blocks, 32 * 32);
        assert_eq!(p.ohmma_instructions, 0);
        assert!(p.dram_bytes_read >= 2 * 4096 * 4096 * 2);
        assert_eq!(p.dram_bytes_written, 4096 * 4096 * 4);
    }

    #[test]
    fn v100_runs_4096_gemm_near_peak() {
        let model = GpuTimingModel::v100();
        let est = model.estimate(&kernel().profile(&GemmShape::new(4096, 4096, 4096)));
        let tflops = 2.0 * 4096f64.powi(3) / (est.time_us() * 1e-6) / 1e12;
        assert!(tflops > 60.0 && tflops < 130.0, "got {tflops} TFLOPS ({} us)", est.time_us());
    }

    #[test]
    fn small_gemm_is_overhead_dominated() {
        let model = GpuTimingModel::v100();
        let est = model.estimate(&kernel().profile(&GemmShape::new(64, 64, 64)));
        // A 64^3 GEMM should take only a few microseconds, dominated by
        // launch overhead rather than math.
        assert!(est.time_us() < 10.0);
    }

    #[test]
    fn execute_matches_reference_matmul() {
        let a = Matrix::random_sparse(48, 32, 0.3, SparsityPattern::Uniform, 1);
        let b = Matrix::random_sparse(32, 40, 0.3, SparsityPattern::Uniform, 2);
        let (out, profile) = kernel().execute(&a, &b);
        let reference = a.matmul(&b);
        assert!(out.approx_eq(&reference, 1e-2));
        assert_eq!(profile.hmma_instructions, (48u64 * 40 * 32).div_ceil(128));
    }

    #[test]
    fn profile_scales_linearly_in_k() {
        let k = kernel();
        let p1 = k.profile(&GemmShape::new(1024, 1024, 1024));
        let p2 = k.profile(&GemmShape::new(1024, 1024, 2048));
        assert_eq!(p2.hmma_instructions, 2 * p1.hmma_instructions);
        assert_eq!(p2.thread_blocks, p1.thread_blocks);
    }
}
