//! The top-level façade: run and estimate dual-side sparse operations.

use dsstc_formats::CsrMatrix;
use dsstc_hwmodel::DsstcOverhead;
use dsstc_kernels::bitmap_spgemm::{BitmapSpGemm, BitmapSpGemmOptions, SyntheticGemmSpec};
use dsstc_kernels::conv::{ConvKernel, ConvScheme, ConvWorkload};
use dsstc_kernels::csr_spgemm::CsrSpGemm;
use dsstc_kernels::dense_gemm::DenseGemm;
use dsstc_kernels::vector_sparse::VectorSparseGemm;
use dsstc_sim::{GpuConfig, GpuTimingModel, KernelEstimate};
use dsstc_tensor::{FeatureMap, GemmShape, Matrix};

/// Result of running one dual-side sparse GEMM.
#[derive(Clone, Debug)]
pub struct SpGemmResult {
    /// The product matrix (FP16 operands, FP32 accumulation).
    pub output: Matrix,
    /// Modelled execution time of the dual-side sparse kernel, in µs.
    pub time_us: f64,
    /// Modelled execution time of the dense Tensor Core baseline, in µs.
    pub dense_time_us: f64,
    /// Speedup of the dual-side kernel over the dense baseline.
    pub speedup_over_dense: f64,
}

/// Modelled times of one GEMM under every scheme of Fig. 21.
#[derive(Clone, Debug)]
pub struct SparsityComparison {
    /// GEMM shape.
    pub shape: GemmShape,
    /// Sparsity of the A (activation) operand.
    pub a_sparsity: f64,
    /// Sparsity of the B (weight) operand.
    pub b_sparsity: f64,
    /// CUTLASS-style dense GEMM time, µs.
    pub dense_us: f64,
    /// cuSparse-style CSR SpGEMM time, µs (present only when CSR operands
    /// were supplied or synthesised).
    pub cusparse_us: Option<f64>,
    /// Single-side Sparse Tensor Core time, µs.
    pub vector_sparse_us: f64,
    /// This paper's dual-side SpGEMM time, µs.
    pub dual_side_us: f64,
}

impl SparsityComparison {
    /// Speedup of the dual-side kernel over the dense baseline.
    pub fn dual_side_speedup(&self) -> f64 {
        self.dense_us / self.dual_side_us
    }
}

/// The dual-side sparse Tensor Core: configuration plus timing model.
#[derive(Clone, Debug)]
pub struct DualSideSparseTensorCore {
    config: GpuConfig,
    model: GpuTimingModel,
    options: BitmapSpGemmOptions,
}

impl DualSideSparseTensorCore {
    /// Creates the engine for an arbitrary GPU configuration.
    pub fn new(config: GpuConfig) -> Self {
        let model = GpuTimingModel::new(config.clone());
        DualSideSparseTensorCore { config, model, options: BitmapSpGemmOptions::default() }
    }

    /// Creates the engine for the paper's V100 configuration.
    pub fn v100() -> Self {
        Self::new(GpuConfig::v100())
    }

    /// Overrides the SpGEMM ablation options (operand collector, two-level
    /// encoding).
    pub fn with_options(mut self, options: BitmapSpGemmOptions) -> Self {
        self.options = options;
        self
    }

    /// The GPU configuration in use.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// The timing model in use.
    pub fn timing_model(&self) -> &GpuTimingModel {
        &self.model
    }

    fn spgemm_kernel(&self) -> BitmapSpGemm {
        BitmapSpGemm::new(self.config.clone()).with_options(self.options)
    }

    /// Runs a dual-side sparse GEMM functionally and reports its modelled
    /// time alongside the dense baseline's.
    ///
    /// # Panics
    /// Panics if the inner dimensions of `a` and `b` disagree.
    pub fn spgemm(&self, a: &Matrix, b: &Matrix) -> SpGemmResult {
        let (output, profile) = self.spgemm_kernel().execute(a, b);
        let est = self.model.estimate(&profile);
        let shape = GemmShape::new(a.rows(), b.cols(), a.cols());
        let dense = self.model.estimate(&DenseGemm::new(self.config.clone()).profile(&shape));
        SpGemmResult {
            output,
            time_us: est.time_us(),
            dense_time_us: dense.time_us(),
            speedup_over_dense: dense.time_us() / est.time_us(),
        }
    }

    /// Estimates (without materialising matrices) the dual-side SpGEMM time
    /// for a problem described by shape and operand sparsities. The sparser
    /// operand is automatically mapped to the column-condensed A side of the
    /// outer product (the side with the finer skip granularity).
    pub fn estimate_spgemm(
        &self,
        shape: GemmShape,
        a_sparsity: f64,
        b_sparsity: f64,
    ) -> KernelEstimate {
        let spec = SyntheticGemmSpec::oriented(
            shape,
            a_sparsity,
            b_sparsity,
            None,
            None,
            fig_seed(shape, a_sparsity, b_sparsity),
        );
        let (profile, _) = self.spgemm_kernel().profile_synthetic(&spec);
        self.model.estimate(&profile)
    }

    /// Compares every Fig. 21 scheme on one synthetic GEMM problem.
    ///
    /// The cuSparse entry is only produced for problems up to 1024 on a side
    /// (larger CSR operands are expensive to materialise); `None` otherwise.
    pub fn compare_schemes(
        &self,
        shape: GemmShape,
        a_sparsity: f64,
        b_sparsity: f64,
    ) -> SparsityComparison {
        let dense = self.model.estimate(&DenseGemm::new(self.config.clone()).profile(&shape));
        let vector = self
            .model
            .estimate(&VectorSparseGemm::new(self.config.clone()).profile(&shape, b_sparsity));
        let dual = self.estimate_spgemm(shape, a_sparsity, b_sparsity);
        let cusparse_us = if shape.m <= 1024 && shape.n <= 1024 && shape.k <= 1024 {
            let a = Matrix::random_sparse(
                shape.m,
                shape.k,
                a_sparsity,
                dsstc_tensor::SparsityPattern::Uniform,
                91,
            );
            let b = Matrix::random_sparse(
                shape.k,
                shape.n,
                b_sparsity,
                dsstc_tensor::SparsityPattern::Uniform,
                92,
            );
            let profile = CsrSpGemm::new(self.config.clone())
                .profile(&CsrMatrix::encode(&a), &CsrMatrix::encode(&b));
            Some(self.model.estimate(&profile).time_us())
        } else {
            None
        };
        SparsityComparison {
            shape,
            a_sparsity,
            b_sparsity,
            dense_us: dense.time_us(),
            cusparse_us,
            vector_sparse_us: vector.time_us(),
            dual_side_us: dual.time_us(),
        }
    }

    /// Runs a dual-side sparse convolution functionally (bitmap implicit
    /// im2col + dual-side SpGEMM). The output matrix has one row per output
    /// pixel and one column per output channel.
    pub fn spconv(
        &self,
        input: &FeatureMap,
        weights: &[FeatureMap],
        shape: &dsstc_tensor::ConvShape,
    ) -> (Matrix, f64) {
        let driver = ConvKernel::new(self.config.clone());
        let (output, profile) = driver.execute_dual_sparse(input, weights, shape);
        (output, self.model.estimate(&profile).time_us())
    }

    /// Estimates a convolution layer's time under one of the five Fig. 22
    /// schemes.
    pub fn estimate_conv(&self, workload: &ConvWorkload, scheme: ConvScheme) -> f64 {
        ConvKernel::new(self.config.clone()).estimate_us(&self.model, workload, scheme)
    }

    /// The hardware overhead estimate (Table IV) for this configuration.
    pub fn hardware_overhead(&self) -> DsstcOverhead {
        DsstcOverhead::for_configuration(
            dsstc_hwmodel::TechnologyNode::Nm12,
            self.config.num_sms as u64,
            self.config.sub_cores_per_sm as u64,
            self.config.tensor_cores_per_sub_core as u64,
            self.config.clock_ghz,
        )
    }
}

/// Deterministic seed for synthetic sweeps, derived from the problem
/// parameters so repeated calls agree.
fn fig_seed(shape: GemmShape, a_sparsity: f64, b_sparsity: f64) -> u64 {
    (shape.m as u64)
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(shape.n as u64)
        .wrapping_mul(0x85EB_CA6B)
        .wrapping_add(shape.k as u64)
        .wrapping_mul(0xC2B2_AE35)
        .wrapping_add((a_sparsity * 10_000.0) as u64)
        .wrapping_mul(31)
        .wrapping_add((b_sparsity * 10_000.0) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsstc_tensor::{ConvShape, SparsityPattern};

    fn engine() -> DualSideSparseTensorCore {
        DualSideSparseTensorCore::v100()
    }

    #[test]
    fn spgemm_is_functionally_correct_and_faster_when_sparse() {
        let a = Matrix::random_sparse(128, 128, 0.8, SparsityPattern::Uniform, 3);
        let b = Matrix::random_sparse(128, 128, 0.8, SparsityPattern::Uniform, 4);
        let result = engine().spgemm(&a, &b);
        assert!(result.output.approx_eq(&a.matmul(&b), 1e-2));
        assert!(result.speedup_over_dense > 0.5);
        assert!(result.time_us > 0.0 && result.dense_time_us > 0.0);
    }

    #[test]
    fn estimate_spgemm_speedup_grows_with_sparsity() {
        let e = engine();
        let shape = GemmShape::new(2048, 2048, 2048);
        let dense = e.estimate_spgemm(shape, 0.0, 0.0).time_us();
        let sparse = e.estimate_spgemm(shape, 0.9, 0.9).time_us();
        assert!(sparse < dense / 2.0, "dense {dense} vs sparse {sparse}");
    }

    #[test]
    fn compare_schemes_orders_match_figure_21() {
        let e = engine();
        let shape = GemmShape::new(1024, 1024, 1024);
        // Moderately sparse A, very sparse B: dual-side should win, the
        // fixed-ratio single-side baseline should sit between it and dense.
        let cmp = e.compare_schemes(shape, 0.5, 0.99);
        assert!(cmp.dual_side_us < cmp.dense_us);
        assert!(cmp.vector_sparse_us < cmp.dense_us);
        assert!(cmp.dual_side_us < cmp.vector_sparse_us);
        assert!(cmp.dual_side_speedup() > 1.0);
        assert!(cmp.cusparse_us.is_some());
    }

    #[test]
    fn compare_schemes_skips_cusparse_for_large_problems() {
        let cmp = engine().compare_schemes(GemmShape::new(2048, 2048, 2048), 0.5, 0.5);
        assert!(cmp.cusparse_us.is_none());
    }

    #[test]
    fn spconv_matches_direct_convolution() {
        let shape = ConvShape::square(8, 2, 3, 3, 1, 1);
        let input = FeatureMap::random_sparse(&shape, 0.5, 5);
        let weights: Vec<FeatureMap> = (0..3)
            .map(|n| {
                let mut w = FeatureMap::zeros(2, 3, 3);
                w.set(0, 1, 1, 1.0 + n as f32);
                w.set(1, 0, 2, -0.5);
                w
            })
            .collect();
        let (out, time_us) = engine().spconv(&input, &weights, &shape);
        let reference = input.conv2d_reference(&weights, &shape);
        for n in 0..3 {
            for oy in 0..shape.out_h() {
                for ox in 0..shape.out_w() {
                    assert!(
                        (out[(oy * shape.out_w() + ox, n)] - reference.get(n, oy, ox)).abs() < 1e-2
                    );
                }
            }
        }
        assert!(time_us > 0.0);
    }

    #[test]
    fn estimate_conv_dual_beats_dense_implicit_on_sparse_layer() {
        let e = engine();
        let w = ConvWorkload::new(ConvShape::square(28, 256, 256, 3, 1, 1), 0.7, 0.8);
        let dense = e.estimate_conv(&w, ConvScheme::DenseImplicit);
        let dual = e.estimate_conv(&w, ConvScheme::DualSparseImplicit);
        assert!(dual < dense);
    }

    #[test]
    fn hardware_overhead_is_small() {
        let o = engine().hardware_overhead();
        assert!(o.area_fraction_of_v100() < 0.02);
        assert!(o.power_fraction_of_v100() < 0.025);
    }

    #[test]
    fn estimates_are_deterministic() {
        let e = engine();
        let shape = GemmShape::new(512, 512, 512);
        let a = e.estimate_spgemm(shape, 0.6, 0.7).time_us();
        let b = e.estimate_spgemm(shape, 0.6, 0.7).time_us();
        assert_eq!(a, b);
    }
}
