//! End-to-end tests of the TCP front-end: framing over a real socket,
//! pipelining, error frames, connection limits, graceful shutdown, and an
//! open-loop sweep over loopback whose outputs must be **bit-identical** to
//! the in-process submit path.
#![cfg(target_os = "linux")]

use std::time::{Duration, Instant};

use dsstc_serve::net::{WireClient, WireError, WireServer, WireStatus, WIRE_VERSION};
use dsstc_serve::{
    pace_until, AdmissionControl, InferRequest, ModelId, PoissonArrivals, Priority, ServeConfig,
};
use dsstc_tensor::{Matrix, SparsityPattern};

const PROXY_DIM: usize = 32;

fn wire_server() -> WireServer {
    WireServer::start(
        ServeConfig::default()
            .with_max_batch(4)
            .with_max_queue_wait(Duration::from_millis(1))
            .with_proxy_dim(PROXY_DIM),
    )
    .expect("bind loopback")
}

fn features(seed: u64) -> Matrix {
    Matrix::random_sparse(2, PROXY_DIM, 0.4, SparsityPattern::Uniform, seed)
}

fn request(seed: u64) -> InferRequest {
    let model = if seed.is_multiple_of(2) { ModelId::RnnLm } else { ModelId::BertBase };
    let priority = if seed.is_multiple_of(4) { Priority::High } else { Priority::Normal };
    InferRequest::new(model, features(seed)).with_priority(priority)
}

#[test]
fn wire_responses_match_in_process_responses_bit_for_bit() {
    let mut server = wire_server();
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    for seed in 0..8 {
        let wire = client.infer(&request(seed)).expect("served over the wire");
        let in_process = server.server().infer(request(seed)).expect("served in-process");
        assert_eq!(wire.output, in_process.output, "seed {seed}");
        assert_eq!(wire.model, in_process.model);
        assert_eq!(wire.priority, in_process.priority);
        assert!(wire.execute_us > 0.0);
        assert!(wire.modelled_batch_us > 0.0);
    }
    let stats = server.stats();
    let wire = stats.wire.expect("wire counters attached");
    assert_eq!(wire.frames_received, 8);
    assert_eq!(wire.frames_sent, 8);
    assert_eq!(wire.error_frames_sent, 0);
    assert_eq!(wire.connections_accepted, 1);
    server.shutdown();
}

#[test]
fn pipelined_requests_all_answer_with_correct_ids() {
    let mut server = wire_server();
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    const N: u64 = 24;
    let mut sent = std::collections::HashMap::new();
    for seed in 0..N {
        let id = client.send(&request(seed)).expect("send");
        sent.insert(id, seed);
    }
    // Responses may arrive out of submission order; every id must answer
    // exactly once and carry the right model's output shape.
    for _ in 0..N {
        let response = client.recv().expect("response");
        assert_eq!(response.status, WireStatus::Ok);
        let seed = sent.remove(&response.id).expect("unique id");
        let body = response.into_body().expect("ok body");
        assert_eq!(body.output.rows(), 2);
        assert_eq!(body.output.cols(), PROXY_DIM);
        assert!(body.batch_size >= 1);
        let expected_model =
            if seed.is_multiple_of(2) { ModelId::RnnLm } else { ModelId::BertBase };
        assert_eq!(body.model, expected_model);
    }
    assert!(sent.is_empty());
    server.shutdown();
}

#[test]
fn invalid_request_gets_error_frame_and_connection_survives() {
    let mut server = wire_server();
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    // Wrong feature width: a request-level error frame, not a dead socket.
    let bad = InferRequest::new(ModelId::RnnLm, Matrix::zeros(2, PROXY_DIM * 2));
    let id = client.send(&bad).expect("send");
    let response = client.recv().expect("error frame");
    assert_eq!(response.id, id);
    assert_eq!(response.status, WireStatus::InvalidRequest);
    assert!(response.message.contains("columns"), "{}", response.message);
    // The same connection still serves valid traffic.
    let ok = client.infer(&request(2)).expect("served after the error");
    assert_eq!(ok.output.cols(), PROXY_DIM);
    let wire = server.wire_stats();
    assert_eq!(wire.requests_rejected, 1);
    assert_eq!(wire.error_frames_sent, 1);
    assert_eq!(wire.connections_closed, 0);
    server.shutdown();
}

#[test]
fn garbage_bytes_poison_the_connection_with_a_final_error_frame() {
    let mut server = wire_server();
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    client.send_raw(b"GET / HTTP/1.1\r\n\r\n").expect("send garbage");
    let response = client.recv().expect("final error frame before close");
    // The reserved poison id: never a request's own id, so a client that
    // pipelined real requests can tell "stream is dead" from "request N
    // was rejected".
    assert_eq!(response.id, dsstc_serve::net::POISON_ID);
    assert_eq!(response.status, WireStatus::InvalidRequest);
    // The server closed the connection: the next read is EOF.
    assert!(matches!(client.recv(), Err(WireError::Truncated | WireError::Io(_))));
    let wire = server.wire_stats();
    assert_eq!(wire.decode_errors, 1);
    server.shutdown();
}

#[test]
fn unsupported_version_is_reported_then_closed() {
    let mut server = wire_server();
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    // A valid frame with a patched version field (the checksum only covers
    // the body, so this is exactly what a future-version client looks like).
    let mut bytes = dsstc_serve::net::RequestFrame::from_request(1, &request(0)).to_bytes();
    let future = (WIRE_VERSION + 1).to_le_bytes();
    bytes[4..6].copy_from_slice(&future);
    client.send_raw(&bytes).expect("send");
    let response = client.recv().expect("version error frame");
    assert_eq!(response.status, WireStatus::UnsupportedVersion);
    assert!(matches!(client.recv(), Err(WireError::Truncated | WireError::Io(_))));
    server.shutdown();
}

#[test]
fn connection_limit_rejects_the_excess_connection() {
    let mut server = WireServer::start(
        ServeConfig::default()
            .with_max_connections(1)
            .with_max_queue_wait(Duration::from_millis(1))
            .with_proxy_dim(PROXY_DIM),
    )
    .expect("bind loopback");
    let mut first = WireClient::connect(server.local_addr()).expect("connect");
    // Make sure the first connection is registered before racing a second.
    first.infer(&request(0)).expect("served");
    let mut second = WireClient::connect(server.local_addr()).expect("TCP connect still succeeds");
    // The server closes it instead of serving: the first read is EOF (or a
    // reset, depending on timing).
    let outcome = second.infer(&request(1));
    assert!(outcome.is_err(), "over-limit connection must not be served");
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.wire_stats().connections_rejected == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.wire_stats().connections_rejected, 1);
    // The first connection is unaffected.
    first.infer(&request(2)).expect("still served");
    server.shutdown();
}

#[test]
fn non_reading_client_cannot_grow_the_outbound_buffer_past_the_cap() {
    let mut server = WireServer::start(
        ServeConfig::default()
            .with_max_batch(4)
            .with_max_queue_wait(Duration::from_millis(1))
            .with_proxy_dim(PROXY_DIM)
            // Far below one response frame, so the first completed response
            // breaches — exactly what a production-size buffer looks like
            // under a client that submitted work and stopped reading.
            .with_max_outbound_bytes(64),
    )
    .expect("bind loopback");
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    for seed in 0..8 {
        client.send(&request(seed)).expect("send");
    }
    // The client reads nothing; the server must poison the connection
    // instead of buffering responses without bound.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.wire_stats().outbound_overflows == 0 {
        assert!(Instant::now() < deadline, "server never detected the slow reader");
        std::thread::sleep(Duration::from_millis(10));
    }
    // When the client finally reads it finds the backlog dropped: one final
    // error frame under the poison id, then EOF.
    let response = client.recv().expect("final error frame");
    assert_eq!(response.id, dsstc_serve::net::POISON_ID);
    assert_eq!(response.status, WireStatus::ShuttingDown);
    assert!(response.message.contains("outbound"), "{}", response.message);
    assert!(matches!(client.recv(), Err(WireError::Truncated | WireError::Io(_))));
    // The poisoned connection is retired once its in-flight work drains,
    // and later completions must not re-count the breach.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.wire_stats().connections_closed == 0 {
        assert!(Instant::now() < deadline, "poisoned connection never retired");
        std::thread::sleep(Duration::from_millis(10));
    }
    let wire = server.wire_stats();
    assert_eq!(wire.outbound_overflows, 1);
    assert!(wire.error_frames_sent >= 1);
    server.shutdown();
}

#[test]
fn graceful_shutdown_answers_every_pipelined_request() {
    let mut server = wire_server();
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    const N: u64 = 16;
    for seed in 0..N {
        client.send(&request(seed)).expect("send");
    }
    // Shut down while responses are still streaming; the drain must answer
    // everything already submitted.
    let reader = std::thread::spawn(move || {
        let mut answered = 0;
        for _ in 0..N {
            match client.recv() {
                Ok(response) if response.status == WireStatus::Ok => answered += 1,
                other => panic!("expected Ok response, got {other:?}"),
            }
        }
        answered
    });
    std::thread::sleep(Duration::from_millis(5));
    server.shutdown();
    assert_eq!(reader.join().expect("reader"), N);
}

#[test]
fn half_closed_connections_are_retired_not_leaked() {
    let mut server = wire_server();
    // Repeated connect → pipeline → half-close → read-all → drop cycles
    // must not accumulate open server-side connections (the last response
    // races the pump's registry removal; the retire sweep closes the
    // connection on the pump's wake).
    for round in 0..3u64 {
        let mut client = WireClient::connect(server.local_addr()).expect("connect");
        for seed in 0..4 {
            client.send(&request(round * 10 + seed)).expect("send");
        }
        client.finish_sending().expect("half-close");
        for _ in 0..4 {
            let response = client.recv().expect("response");
            assert_eq!(response.status, WireStatus::Ok);
        }
        // After the last response the server should close; observe EOF.
        assert!(matches!(client.recv(), Err(WireError::Truncated | WireError::Io(_))));
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.wire_stats().open_connections() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    let wire = server.wire_stats();
    assert_eq!(wire.open_connections(), 0, "half-closed connections must be retired");
    assert_eq!(wire.connections_accepted, 3);
    assert_eq!(wire.connections_closed, 3);
    server.shutdown();
}

/// The acceptance-criteria sweep: seeded Poisson arrivals over loopback,
/// multiple pipelined client connections, every output bit-identical to the
/// in-process path serving the same trace.
#[test]
fn open_loop_sweep_over_loopback_is_bit_identical_to_in_process() {
    const SUBMITTERS: usize = 2;
    const PER_SUBMITTER: u64 = 12;
    const OFFERED_RPS: f64 = 600.0;

    let mut server = wire_server();
    let addr = server.local_addr();
    let started = Instant::now();
    let outputs: Vec<(u64, Matrix)> = std::thread::scope(|scope| {
        let handles: Vec<_> = PoissonArrivals::new(OFFERED_RPS, 0xA11)
            .split(SUBMITTERS)
            .into_iter()
            .enumerate()
            .map(|(t, mut arrivals)| {
                scope.spawn(move || {
                    let mut client = WireClient::connect(addr).expect("connect");
                    let mut next_arrival = started;
                    let mut ids = std::collections::HashMap::new();
                    for i in 0..PER_SUBMITTER {
                        next_arrival += arrivals.next_gap();
                        pace_until(next_arrival);
                        let seed = t as u64 * 1_000_003 + i;
                        let id = client.send(&request(seed)).expect("send");
                        ids.insert(id, seed);
                    }
                    let mut outputs = Vec::new();
                    for _ in 0..PER_SUBMITTER {
                        let response = client.recv().expect("response");
                        let seed = ids.remove(&response.id).expect("unique id");
                        outputs.push((seed, response.into_body().expect("ok").output));
                    }
                    outputs
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("submitter")).collect()
    });

    assert_eq!(outputs.len(), SUBMITTERS * PER_SUBMITTER as usize);
    // Bit-identical to serving the same requests in-process.
    for (seed, wire_output) in outputs {
        let in_process = server.server().infer(request(seed)).expect("in-process");
        assert_eq!(wire_output, in_process.output, "seed {seed}");
    }
    let wire = server.wire_stats();
    assert_eq!(wire.frames_received, SUBMITTERS as u64 * PER_SUBMITTER);
    assert_eq!(wire.frames_sent, SUBMITTERS as u64 * PER_SUBMITTER);
    assert_eq!(wire.decode_errors, 0);
    server.shutdown();
}

#[test]
fn wire_requests_record_full_traces_with_wire_stamps() {
    use dsstc_serve::Stage;
    let mut server = wire_server();
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    const N: u64 = 12;
    for seed in 0..N {
        client.send(&request(seed)).expect("send");
    }
    for _ in 0..N {
        client.recv().expect("response").into_body().expect("served");
    }
    // WireFlushed is stamped by the event loop as the response bytes clear
    // the socket, concurrently with the client's reads: poll briefly.
    let telemetry = std::sync::Arc::clone(server.server().telemetry());
    let deadline = Instant::now() + Duration::from_secs(5);
    while telemetry.traces_recorded() < N && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(telemetry.traces_recorded(), N);
    let traces = telemetry.sink().recent();
    assert_eq!(traces.len() as u64, N);
    for trace in &traces {
        assert!(trace.is_wire(), "wire request must stamp WireDecoded: {trace:?}");
        assert!(trace.is_complete(), "stages missing on {trace:?}");
        assert!(trace.is_monotonic(), "stage timestamps regress on {trace:?}");
        assert!(
            trace.stage_us(Stage::WireFlushed).is_some(),
            "response flush must stamp WireFlushed: {trace:?}"
        );
        assert!(trace.span_us(Stage::WireDecoded, Stage::WireFlushed).is_some());
    }
    server.shutdown();
}

/// The sharding acceptance test: the same pipelined multi-connection load
/// served with 1, 2 and 4 reactors must preserve per-connection frame
/// ordering and answer bit-identically to the in-process path.
#[test]
fn sharded_reactors_preserve_ordering_and_bit_identical_responses() {
    const CONNS: usize = 6;
    const PER_CONN: u64 = 8;
    for reactors in [1usize, 2, 4] {
        let mut server = WireServer::start(
            ServeConfig::default()
                .with_max_batch(4)
                .with_max_queue_wait(Duration::from_millis(1))
                .with_proxy_dim(PROXY_DIM)
                .with_reactors(reactors),
        )
        .expect("bind loopback");
        assert_eq!(server.reactors(), reactors);
        let addr = server.local_addr();
        let outputs: Vec<(u64, Matrix)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CONNS)
                .map(|c| {
                    scope.spawn(move || {
                        let mut client = WireClient::connect(addr).expect("connect");
                        let mut ids = std::collections::HashMap::new();
                        let mut error_ids = Vec::new();
                        for i in 0..PER_CONN {
                            if i % 4 == 3 {
                                // Wrong feature width: answered with an error
                                // frame generated synchronously at decode
                                // time, so the order these come back in
                                // proves the reactor consumed this
                                // connection's frames in the order sent.
                                let bad = InferRequest::new(
                                    ModelId::RnnLm,
                                    Matrix::zeros(2, PROXY_DIM * 2),
                                );
                                error_ids.push(client.send(&bad).expect("send"));
                            } else {
                                let seed = c as u64 * 1_000_003 + i;
                                ids.insert(client.send(&request(seed)).expect("send"), seed);
                            }
                        }
                        let mut outputs = Vec::new();
                        let mut seen_errors = Vec::new();
                        for _ in 0..PER_CONN {
                            let response = client.recv().expect("response");
                            if response.status == WireStatus::Ok {
                                let seed = ids.remove(&response.id).expect("unique id");
                                outputs.push((seed, response.into_body().expect("ok").output));
                            } else {
                                assert_eq!(response.status, WireStatus::InvalidRequest);
                                seen_errors.push(response.id);
                            }
                        }
                        assert!(ids.is_empty(), "unanswered requests on conn {c}");
                        assert_eq!(seen_errors, error_ids, "conn {c} frame order broke");
                        outputs
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("client")).collect()
        });
        // 2 of every 8 frames per connection were the deliberate errors.
        assert_eq!(outputs.len(), CONNS * (PER_CONN as usize - 2));
        for (seed, wire_output) in outputs {
            let in_process = server.server().infer(request(seed)).expect("in-process");
            assert_eq!(wire_output, in_process.output, "reactors {reactors} seed {seed}");
        }
        // Quiescent (every response read), so the counters are exact: the
        // merged view must be the field-wise sum of the per-reactor
        // snapshots, and with more connections than reactors the
        // least-loaded hand-off must have spread load to every reactor.
        let per = server.reactor_stats();
        assert_eq!(per.len(), reactors);
        let merged = server.wire_stats();
        assert_eq!(merged, dsstc_serve::WireStats::merged(&per));
        assert_eq!(merged.frames_received, (CONNS as u64) * PER_CONN);
        assert_eq!(merged.frames_sent, (CONNS as u64) * (PER_CONN - 2));
        assert_eq!(merged.error_frames_sent, (CONNS as u64) * 2);
        assert_eq!(merged.connections_accepted, CONNS as u64);
        assert!(
            per.iter().all(|r| r.connections_accepted >= 1),
            "reactors {reactors}: a reactor was starved of connections: {per:?}"
        );
        server.shutdown();
    }
}

#[test]
fn multi_reactor_graceful_drain_answers_every_reactors_in_flight() {
    let mut server = WireServer::start(
        ServeConfig::default()
            .with_max_batch(4)
            .with_max_queue_wait(Duration::from_millis(1))
            .with_proxy_dim(PROXY_DIM)
            .with_reactors(4),
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    const CONNS: usize = 4;
    const N: u64 = 8;
    // One connection per reactor (the balanced hand-off guarantees the
    // spread), each with a full pipeline of unanswered requests.
    let mut clients = Vec::new();
    for _ in 0..CONNS {
        let mut client = WireClient::connect(addr).expect("connect");
        for seed in 0..N {
            client.send(&request(seed)).expect("send");
        }
        clients.push(client);
    }
    let readers: Vec<_> = clients
        .into_iter()
        .map(|mut client| {
            std::thread::spawn(move || {
                for _ in 0..N {
                    match client.recv() {
                        Ok(response) if response.status == WireStatus::Ok => {}
                        other => panic!("expected Ok response during drain, got {other:?}"),
                    }
                }
            })
        })
        .collect();
    // Shut down while responses are still streaming on every reactor: the
    // drain must answer everything already submitted, well before the
    // drain timeout would force-close.
    std::thread::sleep(Duration::from_millis(5));
    let drain_started = Instant::now();
    server.shutdown();
    assert!(
        drain_started.elapsed() < dsstc_serve::net::DRAIN_TIMEOUT,
        "drain must finish by answering, not by timing out"
    );
    for reader in readers {
        reader.join().expect("reader got all its responses");
    }
    let per = server.reactor_stats();
    assert!(
        per.iter().all(|r| r.connections_accepted == 1),
        "every reactor owned one draining connection: {per:?}"
    );
    assert_eq!(server.wire_stats().frames_sent, (CONNS as u64) * N);
}

#[test]
fn shed_requests_answer_with_shed_load_frames_and_reconcile_with_metrics() {
    // Admission control with a 1 us low-priority SLO: any backlog sheds the
    // low class. Three pipelined normal requests sit in the 500 ms batching
    // window, so the low request that follows them on the same connection
    // is rejected synchronously with a ShedLoad error frame — and the
    // connection survives to serve more traffic.
    let hour = Duration::from_secs(3600);
    let metrics_bind: std::net::SocketAddr = "127.0.0.1:0".parse().expect("literal addr");
    let mut server = WireServer::start(
        ServeConfig::default()
            .with_workers(1)
            .with_max_batch(8)
            .with_max_queue_wait(Duration::from_millis(500))
            .with_proxy_dim(PROXY_DIM)
            .with_metrics_addr(metrics_bind)
            .with_admission_control(AdmissionControl::new(
                [Duration::from_micros(1), hour, hour],
                1.0,
                10_000,
            )),
    )
    .expect("bind loopback");
    let metrics_addr = server.metrics_addr().expect("metrics endpoint bound");
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    let normal =
        |seed| InferRequest::new(ModelId::BertBase, features(seed)).with_priority(Priority::Normal);
    for seed in 0..3 {
        client.send(&normal(seed)).expect("send normal");
    }
    let low = InferRequest::new(ModelId::BertBase, features(9)).with_priority(Priority::Low);
    let low_id = client.send(&low).expect("send low");
    // The shed frame is generated at submit time, so it overtakes the
    // normal responses still waiting out the batching window.
    let response = client.recv().expect("shed frame");
    assert_eq!(response.id, low_id);
    assert_eq!(response.status, WireStatus::ShedLoad);
    assert!(response.message.contains("load shed"), "{}", response.message);
    assert!(response.message.contains("low"), "{}", response.message);
    for _ in 0..3 {
        let ok = client.recv().expect("normal response");
        assert_eq!(ok.status, WireStatus::Ok, "admitted requests still serve");
    }
    // The same connection keeps working; high priority is projection-proof.
    let high = InferRequest::new(ModelId::BertBase, features(11)).with_priority(Priority::High);
    client.infer(&high).expect("high priority admitted after the shed");

    let wire = server.wire_stats();
    assert_eq!(wire.shed_low, 1);
    assert_eq!((wire.shed_normal, wire.shed_high), (0, 0));
    assert_eq!(wire.shed_total(), 1);
    assert_eq!(wire.requests_rejected, 0, "shed is not counted as a client mistake");
    assert_eq!(wire.error_frames_sent, 1);
    assert_eq!(wire.connections_closed, 0, "shedding must not poison the connection");

    // The scrape, the wire counters and the server-side admission counters
    // must reconcile exactly.
    let body = scrape_metrics(metrics_addr);
    assert_eq!(metric_value(&body, "dsstc_wire_shed_total{priority=\"low\"}") as u64, 1);
    assert_eq!(metric_value(&body, "dsstc_wire_shed_total{priority=\"normal\"}") as u64, 0);
    assert_eq!(metric_value(&body, "dsstc_wire_shed_total{priority=\"high\"}") as u64, 0);
    assert_eq!(metric_value(&body, "dsstc_shed_requests_total{priority=\"low\"}") as u64, 1);
    assert_eq!(metric_value(&body, "dsstc_shed_requests_total{priority=\"high\"}") as u64, 0);
    let stats = server.stats();
    assert_eq!(stats.total_shed(), 1);
    assert_eq!(stats.for_priority(Priority::Low).shed, 1);
    server.shutdown();
}

/// One blocking HTTP/1.0 scrape of the metrics endpoint, returning the body.
fn scrape_metrics(addr: std::net::SocketAddr) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect metrics endpoint");
    stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").expect("send scrape");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read scrape response");
    let (headers, body) = raw.split_once("\r\n\r\n").expect("an HTTP response");
    assert!(headers.starts_with("HTTP/1.0 200"), "unexpected status: {headers}");
    body.to_string()
}

/// The value of an unlabelled sample line `NAME VALUE`.
fn metric_value(body: &str, name: &str) -> f64 {
    body.lines()
        .find(|line| line.strip_prefix(name).is_some_and(|rest| rest.starts_with(' ')))
        .unwrap_or_else(|| panic!("metric {name} missing from scrape:\n{body}"))
        .rsplit(' ')
        .next()
        .expect("sample value")
        .parse()
        .expect("numeric sample")
}

/// Version-bump regression (wire v2): a client still speaking the previous
/// `WIRE_VERSION` must get an `UnsupportedVersion` error frame whose
/// **envelope is encoded in the server's version** — the reply names what
/// the server speaks, it does not parrot the client's version back.
#[test]
fn previous_version_client_gets_an_error_encoded_in_the_servers_version() {
    use std::io::{Read, Write};
    let mut server = wire_server();
    let mut bytes = dsstc_serve::net::RequestFrame::from_request(1, &request(0)).to_bytes();
    // The checksum only covers the body, so patching the envelope version
    // is exactly what a not-yet-upgraded v1 client's frames look like.
    bytes[4..6].copy_from_slice(&(WIRE_VERSION - 1).to_le_bytes());
    let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    stream.write_all(&bytes).expect("send v1 frame");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read until server close");
    assert!(raw.len() > 6, "a final error frame precedes the close");
    assert_eq!(
        u16::from_le_bytes([raw[4], raw[5]]),
        WIRE_VERSION,
        "the error reply's envelope carries the server's version"
    );
    let mut decoder = dsstc_serve::net::FrameDecoder::new(1 << 20);
    decoder.feed(&raw);
    let frame = decoder.next_frame().expect("decodable reply").expect("one frame");
    let dsstc_serve::net::Frame::Response(response) = frame else {
        panic!("expected an error response frame");
    };
    assert_eq!(response.id, dsstc_serve::net::POISON_ID);
    assert_eq!(response.status, WireStatus::UnsupportedVersion);
    assert!(
        response.message.contains(&format!("this peer speaks {WIRE_VERSION}")),
        "{}",
        response.message
    );
    server.shutdown();
}

fn auth_server(token: &str) -> WireServer {
    WireServer::start(
        ServeConfig::default()
            .with_max_queue_wait(Duration::from_millis(1))
            .with_proxy_dim(PROXY_DIM)
            .with_auth_token(token),
    )
    .expect("bind loopback")
}

#[test]
fn hello_with_the_right_token_authenticates_and_serves() {
    let mut server = auth_server("sesame");
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    let map = client.hello(Some("sesame")).expect("authenticated hello");
    // A standalone server publishes a single-node map of itself.
    assert_eq!(map.nodes.len(), 1);
    assert_eq!(map.addr_of(0), Some(server.local_addr().to_string().as_str()));
    let body = client.infer(&request(0)).expect("served after auth");
    assert_eq!(body.output.cols(), PROXY_DIM);
    server.shutdown();
}

#[test]
fn hello_with_a_wrong_token_is_rejected_and_closed() {
    let mut server = auth_server("sesame");
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    match client.hello(Some("SESAME")) {
        Err(WireError::Rejected { status, message }) => {
            assert_eq!(status, WireStatus::Unauthorized);
            assert!(message.contains("auth token"), "{message}");
        }
        other => panic!("wrong token must be rejected, got {other:?}"),
    }
    // The server closed the connection after the error frame.
    assert!(matches!(client.recv(), Err(WireError::Truncated | WireError::Io(_))));
    server.shutdown();
}

#[test]
fn hello_without_a_token_is_rejected_when_auth_is_required() {
    let mut server = auth_server("sesame");
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    match client.hello(None) {
        Err(WireError::Rejected { status, .. }) => assert_eq!(status, WireStatus::Unauthorized),
        other => panic!("missing token must be rejected, got {other:?}"),
    }
    assert!(matches!(client.recv(), Err(WireError::Truncated | WireError::Io(_))));
    server.shutdown();
}

#[test]
fn requests_before_an_authenticated_hello_are_refused() {
    let mut server = auth_server("sesame");
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    client.send(&request(0)).expect("send without hello");
    let response = client.recv().expect("error frame");
    assert_eq!(response.id, dsstc_serve::net::POISON_ID);
    assert_eq!(response.status, WireStatus::Unauthorized);
    assert!(matches!(client.recv(), Err(WireError::Truncated | WireError::Io(_))));
    // A fresh, authenticated connection works against the same server.
    let mut good = WireClient::connect(server.local_addr()).expect("connect");
    good.hello(Some("sesame")).expect("authenticated hello");
    good.infer(&request(1)).expect("served after auth");
    server.shutdown();
}

#[test]
fn hello_against_an_open_server_is_optional_and_answers_a_standalone_map() {
    let mut server = wire_server();
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    // No auth configured: hello still answers (with a single-node map) and
    // tokens are simply ignored.
    let map = client.hello(None).expect("hello on an open server");
    assert_eq!(map.version, 1);
    assert_eq!(map.nodes.len(), 1);
    assert!(map.nodes[0].alive);
    client.infer(&request(0)).expect("served");
    // And a client that never says hello is served as before.
    let mut silent = WireClient::connect(server.local_addr()).expect("connect");
    silent.infer(&request(1)).expect("served without hello");
    server.shutdown();
}

#[test]
fn live_metrics_scrape_is_consistent_with_wire_stats() {
    let metrics_bind: std::net::SocketAddr = "127.0.0.1:0".parse().expect("literal addr");
    let mut server = WireServer::start(
        ServeConfig::default()
            .with_max_batch(4)
            .with_max_queue_wait(Duration::from_millis(1))
            .with_proxy_dim(PROXY_DIM)
            .with_metrics_addr(metrics_bind),
    )
    .expect("bind loopback");
    let metrics_addr = server.metrics_addr().expect("metrics endpoint bound");
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    const N: u64 = 10;
    for seed in 0..N {
        client.infer(&request(seed)).expect("served over the wire");
    }
    // All N answered: the frame counters are quiescent, so a scrape and a
    // snapshot taken back to back must agree exactly.
    let body = scrape_metrics(metrics_addr);
    let snapshot = server.wire_stats();
    assert_eq!(snapshot.frames_received, N);
    assert_eq!(metric_value(&body, "dsstc_wire_frames_received_total") as u64, N);
    assert_eq!(metric_value(&body, "dsstc_wire_frames_sent_total") as u64, snapshot.frames_sent);
    assert_eq!(
        metric_value(&body, "dsstc_wire_connections_accepted_total") as u64,
        snapshot.connections_accepted
    );
    assert_eq!(
        metric_value(&body, "dsstc_wire_bytes_received_total") as u64,
        snapshot.bytes_received
    );
    assert_eq!(metric_value(&body, "dsstc_wire_error_frames_total") as u64, 0);
    assert!(metric_value(&body, "dsstc_requests_completed_total") as u64 >= N);
    // The trace pipeline feeds the same exposition.
    assert!(body.contains("dsstc_traces_recorded_total"));
    assert!(body.contains("dsstc_trace_e2e_us_bucket"));
    // A second scrape still answers (connections are per-request).
    let again = scrape_metrics(metrics_addr);
    assert!(
        metric_value(&again, "dsstc_wire_frames_received_total") as u64 >= N,
        "counters must not reset between scrapes"
    );
    server.shutdown();
}
