//! ResNet-18 inference estimation: per-layer speedups of every convolution
//! scheme (the CNN half of the paper's Fig. 22), plus a functional check of
//! the dual-side sparse convolution on one real layer.
//!
//! Run with `cargo run --release -p dsstc --example resnet_inference`.

use dsstc::{DualSideSparseTensorCore, InferenceEstimator};
use dsstc_models::{activation_feature_map, networks, prune_magnitude, LayerKind};
use dsstc_tensor::{FeatureMap, Matrix, SparsityPattern};

fn main() {
    // 1. Whole-network estimate (Fig. 22, ResNet-18 panel).
    let estimator = InferenceEstimator::v100();
    let resnet = networks::resnet18();
    let report = estimator.estimate_network(&resnet);
    println!("{}", report.render_table());

    // 2. Functional dual-side sparse convolution on the "3-2" layer:
    //    ReLU-sparse activations and magnitude-pruned weights, verified
    //    against a direct convolution.
    let layer = resnet.layers().iter().find(|l| l.name == "3-2").expect("layer 3-2 exists");
    let LayerKind::Conv(shape) = layer.kind else { unreachable!("3-2 is a conv layer") };
    // A reduced-channel version keeps the example fast while exercising the
    // same code path.
    let small = dsstc_tensor::ConvShape::square(14, 32, 32, shape.k, shape.stride, shape.padding);
    let input = activation_feature_map(&small, layer.activation_sparsity, 5);
    let weights: Vec<FeatureMap> = (0..small.n)
        .map(|n| {
            let dense = Matrix::random_sparse(
                small.c,
                small.k * small.k,
                0.0,
                SparsityPattern::Uniform,
                100 + n as u64,
            );
            let pruned = prune_magnitude(&dense, layer.weight_sparsity);
            let mut w = FeatureMap::zeros(small.c, small.k, small.k);
            for c in 0..small.c {
                for ky in 0..small.k {
                    for kx in 0..small.k {
                        w.set(c, ky, kx, pruned[(c, ky * small.k + kx)]);
                    }
                }
            }
            w
        })
        .collect();

    let dsstc = DualSideSparseTensorCore::v100();
    let (output, time_us) = dsstc.spconv(&input, &weights, &small);
    let reference = input.conv2d_reference(&weights, &small);
    let mut max_err = 0.0f32;
    for n in 0..small.n {
        for oy in 0..small.out_h() {
            for ox in 0..small.out_w() {
                max_err = max_err
                    .max((output[(oy * small.out_w() + ox, n)] - reference.get(n, oy, ox)).abs());
            }
        }
    }
    println!("Functional SpCONV on a reduced layer 3-2 ({}):", small);
    println!(
        "  input sparsity {:.1}%, weight sparsity {:.1}%",
        input.sparsity() * 100.0,
        layer.weight_sparsity * 100.0
    );
    println!("  max abs error vs direct convolution: {max_err:.4}");
    println!("  modelled kernel time: {time_us:.2} us");
}
