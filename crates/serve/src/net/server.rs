//! The non-blocking TCP front-end: a [`WireServer`] owns an
//! [`InferenceServer`] and exposes it to network clients speaking the
//! length-prefixed frame protocol of [`crate::net::frame`].
//!
//! # Architecture
//!
//! The front-end is sharded across `N = ServeConfig::reactors` **reactors**
//! (`0` sizes N to the host's available parallelism). Each reactor is a
//! pair of threads next to the serving runtime's own dispatcher + workers:
//!
//! * the **event loop** — a level-triggered epoll readiness loop
//!   ([`crate::net::poll`]) over the reactor's own disjoint subset of the
//!   client sockets. It reads whatever bytes are ready, feeds them through
//!   each connection's [`FrameDecoder`] (several pipelined frames per read
//!   decode back-to-back), converts each request frame into an
//!   [`crate::InferRequest`] and submits it through the same path
//!   in-process callers use. It also owns all writes on its connections:
//!   response frames are serialised **directly into** the connection's
//!   outbound buffer (no intermediate body `Vec`, no second copy) and
//!   flushed opportunistically and under `EPOLLOUT` when a socket's send
//!   buffer fills.
//! * the **completion pump** — a plain blocking thread draining the
//!   responses the worker pool sends back for this reactor's requests.
//!   Every wire request is submitted with a clone of its reactor's
//!   response channel; the pump maps each completed
//!   [`crate::InferResponse`] back to its connection and client-chosen id,
//!   hands the still-unencoded response to the event loop over an outbox
//!   channel and wakes the epoll wait through an `eventfd` [`Waker`].
//!
//! Reactor 0 additionally owns the single listener and is the **acceptor**:
//! each accepted connection is handed to the least-loaded reactor
//! (round-robin on ties) over a small mutex-guarded intake queue plus a
//! waker nudge, or adopted directly when reactor 0 itself is least loaded.
//! The owning reactor registers the socket with *its* poller and counts the
//! accept in *its* `WireStatsCollector`; merged counters are the
//! field-wise sum of the per-reactor collectors
//! ([`crate::stats::WireStats::merged`]).
//!
//! Responses stream back **as batches complete**, so pipelined requests on
//! one connection may be answered out of submission order; the echoed id is
//! the correlation contract. Request-level failures (unknown model, wrong
//! feature width, server draining) come back as **error frames** and leave
//! the connection usable; framing-level failures (bad magic, checksum
//! mismatch, unsupported version, oversized frame) poison the byte stream,
//! so the server answers with a final error frame and closes that
//! connection.
//!
//! Shutdown is graceful: the listener closes first, then every reactor
//! independently keeps flushing until each of its in-flight requests has
//! been answered and every outbound buffer drained (bounded by
//! [`DRAIN_TIMEOUT`]), and only then is the inference runtime itself shut
//! down.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::cluster::{constant_time_eq, shard_hash, ClusterState, ShardMap};
use crate::config::ServeConfig;
use crate::net::frame::{
    encode_error_into, encode_hello_into, encode_response_into, encode_shard_map_into, Frame,
    FrameDecoder, HelloFrame, RequestFrame, WireError, WireStatus, POISON_ID,
};
use crate::net::poll::{Event, Poller, Token, Waker, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::request::InferResponse;
use crate::server::{InferenceServer, ServeError};
use crate::stats::{ServerStats, WireStats, WireStatsCollector};
use crate::telemetry::{render_prometheus, MetricsServer, RequestTrace, Stage};

/// Default bound on how long a graceful shutdown keeps draining in-flight
/// requests and unflushed response bytes before force-closing the remaining
/// connections (override with
/// [`ServeConfig::with_drain_timeout`](crate::ServeConfig::with_drain_timeout)).
pub const DRAIN_TIMEOUT: Duration = Duration::from_secs(30);

const TOKEN_LISTENER: Token = Token(0);
const TOKEN_WAKER: Token = Token(1);
/// Connection ids start here; `Token(CONN_BASE + id)` addresses connection
/// `id` (ids are per-reactor, like the tokens they map to).
const CONN_BASE: u64 = 2;

/// One wire request in flight through the batching runtime: which
/// connection it came from and the id the client chose for it.
struct PendingWire {
    conn_id: u64,
    client_id: u64,
}

/// The server-id → wire-request registry shared by a reactor's event loop
/// (insert) and its completion pump (remove). One per reactor.
type Registry = Arc<Mutex<HashMap<u64, PendingWire>>>;

/// One completed response handed from a pump to its event loop: the
/// destination connection, the client-chosen id, and the **still
/// un-encoded** response — the event loop serialises it straight into the
/// connection's outbound buffer, so the frame bytes are written exactly
/// once.
type Outbound = (u64, u64, InferResponse);

/// Accepted sockets handed from the acceptor (reactor 0) to the reactor
/// that will own them.
type Intake = Arc<Mutex<Vec<TcpStream>>>;

/// A TCP front-end for an [`InferenceServer`], speaking the
/// [`crate::net::frame`] protocol.
///
/// ```
/// use dsstc_serve::net::{WireClient, WireServer};
/// use dsstc_serve::{InferRequest, ModelId, ServeConfig};
/// use dsstc_tensor::{Matrix, SparsityPattern};
/// use std::time::Duration;
///
/// let mut server = WireServer::start(
///     ServeConfig::default()
///         .with_max_queue_wait(Duration::from_millis(1))
///         .with_proxy_dim(32),
/// )
/// .unwrap();
///
/// let mut client = WireClient::connect(server.local_addr()).unwrap();
/// let features = Matrix::random_sparse(2, 32, 0.4, SparsityPattern::Uniform, 7);
/// let response = client.infer(&InferRequest::new(ModelId::RnnLm, features)).unwrap();
/// assert_eq!(response.output.rows(), 2);
/// server.shutdown();
/// ```
#[derive(Debug)]
pub struct WireServer {
    server: Option<Arc<InferenceServer>>,
    local_addr: SocketAddr,
    shutdown_flag: Arc<AtomicBool>,
    wakers: Vec<Arc<Waker>>,
    stats: Vec<Arc<WireStatsCollector>>,
    event_loops: Vec<JoinHandle<()>>,
    pumps: Vec<JoinHandle<()>>,
    metrics: Option<MetricsServer>,
    cluster: Option<Arc<ClusterState>>,
    pinger: Option<JoinHandle<()>>,
}

impl WireServer {
    /// Boots the inference runtime from `config`, binds the listener at
    /// `config.listen` (loopback with an OS-assigned port by default) and
    /// spawns `config.reactors` event loops, each with its own completion
    /// pump.
    pub fn start(config: ServeConfig) -> io::Result<WireServer> {
        let listen = config.listen.unwrap_or_else(|| "127.0.0.1:0".parse().expect("literal addr"));
        let max_connections = config.max_connections;
        let max_body_len = config.max_frame_len;
        let max_outbound_bytes = config.max_outbound_bytes;
        let drain_timeout = config.drain_timeout;
        let metrics_addr = config.metrics_addr;
        let cluster_config = config.cluster.clone();
        let auth_token = config.auth_token.clone();
        let reactors = match config.reactors {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        };
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let cluster: Option<Arc<ClusterState>> = cluster_config.as_ref().map(|cluster_config| {
            Arc::new(ClusterState::new(
                cluster_config.node_id,
                ShardMap::from_config(cluster_config, &local_addr.to_string()),
            ))
        });

        let server = Arc::new(InferenceServer::start(config));
        let shutdown_flag = Arc::new(AtomicBool::new(false));
        // Open-connection counts per reactor, shared so the acceptor can
        // enforce the global limit and pick the least-loaded target.
        let loads: Arc<Vec<AtomicUsize>> =
            Arc::new((0..reactors).map(|_| AtomicUsize::new(0)).collect());
        let intakes: Vec<Intake> =
            (0..reactors).map(|_| Arc::new(Mutex::new(Vec::new()))).collect();

        // Every poller + waker pair exists before any thread spawns: the
        // acceptor needs each peer's waker to signal hand-offs.
        let mut pollers = Vec::with_capacity(reactors);
        let mut wakers = Vec::with_capacity(reactors);
        for index in 0..reactors {
            let poller = Poller::new()?;
            if index == 0 {
                poller.register(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
            }
            wakers.push(Arc::new(Waker::new(&poller, TOKEN_WAKER)?));
            pollers.push(poller);
        }
        let stats: Vec<Arc<WireStatsCollector>> =
            (0..reactors).map(|_| Arc::new(WireStatsCollector::new())).collect();

        let mut listener = Some(listener);
        let mut pumps = Vec::with_capacity(reactors);
        let mut event_loops = Vec::with_capacity(reactors);
        for (index, poller) in pollers.into_iter().enumerate() {
            let registry: Registry = Arc::new(Mutex::new(HashMap::new()));
            let (completion_tx, completion_rx) = std::sync::mpsc::channel::<InferResponse>();
            let (outbox_tx, outbox_rx) = std::sync::mpsc::channel::<Outbound>();
            pumps.push({
                let registry = Arc::clone(&registry);
                let waker = Arc::clone(&wakers[index]);
                std::thread::Builder::new()
                    .name(format!("dsstc-wire-pump-{index}"))
                    .spawn(move || pump_loop(&completion_rx, &registry, &outbox_tx, &waker))
                    .expect("failed to spawn completion pump")
            });
            let mut state = Reactor {
                index,
                poller,
                listener: if index == 0 { listener.take() } else { None },
                wakers: wakers.clone(),
                intakes: intakes.clone(),
                loads: Arc::clone(&loads),
                rr: 0,
                server: Arc::clone(&server),
                stats: Arc::clone(&stats[index]),
                registry,
                completion_tx,
                outbox_rx,
                shutdown_flag: Arc::clone(&shutdown_flag),
                conns: HashMap::new(),
                next_conn_id: 0,
                max_connections,
                max_body_len,
                max_outbound_bytes,
                drain_timeout,
                scratch: vec![0u8; 64 * 1024],
                local_addr,
                cluster: cluster.clone(),
                auth_token: auth_token.clone(),
            };
            event_loops.push(
                std::thread::Builder::new()
                    .name(format!("dsstc-wire-loop-{index}"))
                    .spawn(move || state.run())
                    .expect("failed to spawn wire event loop"),
            );
        }

        let metrics = match metrics_addr {
            Some(addr) => {
                let source_server = Arc::clone(&server);
                let source_stats = stats.clone();
                let source_cluster = cluster.clone();
                Some(MetricsServer::start(
                    addr,
                    Arc::new(move || {
                        let mut snapshot = source_server.stats();
                        let per_reactor: Vec<WireStats> =
                            source_stats.iter().map(|s| s.snapshot()).collect();
                        snapshot.wire = Some(WireStats::merged(&per_reactor));
                        snapshot.wire_reactors = per_reactor;
                        snapshot.cluster = source_cluster.as_ref().map(|c| c.snapshot());
                        render_prometheus(&snapshot, source_server.telemetry().registry())
                    }),
                )?)
            }
            None => None,
        };

        // Peer liveness: a plain thread dialling every configured peer each
        // `ping_interval` with the same hello exchange clients use. A peer
        // is declared dead only after `ping_failures` consecutive misses
        // (one dropped packet must not reshuffle the ring) and resurrected
        // on the first success; either transition bumps the map version.
        let pinger = match (&cluster, &cluster_config) {
            (Some(cluster), Some(cluster_config)) if !cluster_config.peers.is_empty() => {
                let cluster = Arc::clone(cluster);
                let peers = cluster_config.peers.clone();
                let interval = cluster_config.ping_interval;
                let threshold = cluster_config.ping_failures;
                let token = auth_token.clone();
                let flag = Arc::clone(&shutdown_flag);
                Some(
                    std::thread::Builder::new()
                        .name("dsstc-wire-pinger".into())
                        .spawn(move || {
                            pinger_loop(&cluster, &peers, interval, threshold, token, &flag)
                        })
                        .expect("failed to spawn peer pinger"),
                )
            }
            _ => None,
        };

        Ok(WireServer {
            server: Some(server),
            local_addr,
            shutdown_flag,
            wakers,
            stats,
            event_loops,
            pumps,
            metrics,
            cluster,
            pinger,
        })
    }

    /// The node's live cluster state, when [`ServeConfig::with_cluster`]
    /// (see [`crate::ServeConfig`]) was set. Standalone servers return
    /// `None` but still answer hello frames with a single-node map.
    pub fn cluster(&self) -> Option<&Arc<ClusterState>> {
        self.cluster.as_ref()
    }

    /// The bound listen address (with the OS-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The bound metrics endpoint address, when
    /// [`ServeConfig::metrics_addr`](crate::ServeConfig) was set.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics.as_ref().map(MetricsServer::local_addr)
    }

    /// How many reactors the front-end is running (after resolving the
    /// `reactors = 0` host-parallelism sentinel).
    pub fn reactors(&self) -> usize {
        self.stats.len()
    }

    /// The inference runtime behind the front-end (for warm-up and
    /// inspection).
    ///
    /// # Panics
    /// Panics after [`WireServer::shutdown`].
    pub fn server(&self) -> &InferenceServer {
        self.server.as_ref().expect("wire server already shut down")
    }

    /// A point-in-time snapshot of the per-connection / per-frame counters,
    /// merged across every reactor.
    pub fn wire_stats(&self) -> WireStats {
        WireStats::merged(&self.reactor_stats())
    }

    /// Per-reactor counter snapshots, in reactor order (reactor 0 owns the
    /// listener). Their field-wise sum is [`WireServer::wire_stats`].
    pub fn reactor_stats(&self) -> Vec<WireStats> {
        self.stats.iter().map(|s| s.snapshot()).collect()
    }

    /// The runtime's metrics snapshot with the wire counters attached.
    ///
    /// # Panics
    /// Panics after [`WireServer::shutdown`].
    pub fn stats(&self) -> ServerStats {
        let mut stats = self.server().stats();
        let per_reactor = self.reactor_stats();
        stats.wire = Some(WireStats::merged(&per_reactor));
        stats.wire_reactors = per_reactor;
        stats.cluster = self.cluster.as_ref().map(|c| c.snapshot());
        stats
    }

    /// Graceful shutdown: stop accepting, answer and flush everything in
    /// flight on every reactor (bounded by [`DRAIN_TIMEOUT`]), close the
    /// connections, then shut the inference runtime down. Idempotent; also
    /// runs on drop.
    pub fn shutdown(&mut self) {
        if let Some(mut metrics) = self.metrics.take() {
            metrics.shutdown();
        }
        self.shutdown_flag.store(true, Ordering::SeqCst);
        for waker in &self.wakers {
            waker.wake();
        }
        if let Some(handle) = self.pinger.take() {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
        for handle in self.event_loops.drain(..) {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
        for handle in self.pumps.drain(..) {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
        if let Some(server) = self.server.take() {
            match Arc::try_unwrap(server) {
                Ok(mut server) => server.shutdown(),
                // Unreachable in practice: every thread-held clone was
                // just joined away.
                Err(shared) => drop(shared),
            }
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Maps completed inferences back to their connection + client id and hands
/// the un-encoded response to the owning reactor's event loop.
fn pump_loop(
    completions: &Receiver<InferResponse>,
    registry: &Registry,
    outbox: &Sender<Outbound>,
    waker: &Waker,
) {
    while let Ok(response) = completions.recv() {
        // Look up first, remove only after the outbox send: the event
        // loop's drain check treats "registry non-empty" as "work pending",
        // so the entry must outlive the hand-off or a response could slip
        // past the drain.
        let pending = {
            let registry = registry.lock().expect("wire registry poisoned");
            registry.get(&response.id).map(|p| (p.conn_id, p.client_id))
        };
        let Some((conn_id, client_id)) = pending else {
            continue; // Submitted by an in-process caller, not the wire.
        };
        let server_id = response.id;
        let delivered = outbox.send((conn_id, client_id, response)).is_ok();
        registry.lock().expect("wire registry poisoned").remove(&server_id);
        if !delivered {
            break; // Event loop is gone; nothing can be written any more.
        }
        waker.wake();
    }
}

/// Dials `addr`, performs the hello exchange (carrying this cluster's
/// `token`, if any) and reports whether the peer answered with a shard-map
/// frame before `timeout`. Anything else — refused connect, timeout, an
/// error frame, garbage — counts as a failed probe.
fn probe_peer(addr: &str, token: Option<&str>, timeout: Duration) -> bool {
    let Ok(sockaddr) = addr.parse::<SocketAddr>() else { return false };
    let Ok(mut stream) = TcpStream::connect_timeout(&sockaddr, timeout) else { return false };
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let _ = stream.set_nodelay(true);
    let mut hello = Vec::new();
    encode_hello_into(&mut hello, token);
    if stream.write_all(&hello).is_err() {
        return false;
    }
    let mut decoder = FrameDecoder::new(1 << 20);
    let mut buf = [0u8; 4096];
    loop {
        match decoder.next_frame() {
            Ok(Some(Frame::ShardMap(_))) => return true,
            Ok(Some(_)) | Err(_) => return false,
            Ok(None) => {}
        }
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => return false,
            Ok(n) => decoder.feed(&buf[..n]),
        }
    }
}

/// The peer-liveness thread: probes every configured peer once per
/// `interval`, declaring a peer dead after `threshold` consecutive failures
/// and alive again on the first success. Liveness transitions go through
/// [`ClusterState::set_alive`], which bumps the shard-map version so
/// clients (and the redirect path) reroute.
fn pinger_loop(
    cluster: &ClusterState,
    peers: &[(u16, String)],
    interval: Duration,
    threshold: u32,
    token: Option<String>,
    shutdown_flag: &AtomicBool,
) {
    let mut failures: HashMap<u16, u32> = peers.iter().map(|(id, _)| (*id, 0)).collect();
    loop {
        // Sleep in short slices so a shutdown never waits a full interval.
        let deadline = Instant::now() + interval;
        while Instant::now() < deadline {
            if shutdown_flag.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(10).min(interval));
        }
        for (id, addr) in peers {
            if shutdown_flag.load(Ordering::SeqCst) {
                return;
            }
            let ok = probe_peer(addr, token.as_deref(), interval);
            cluster.record_peer_probe(!ok);
            let count = failures.entry(*id).or_insert(0);
            if ok {
                *count = 0;
                cluster.set_alive(*id, true);
            } else {
                *count = count.saturating_add(1);
                if *count >= threshold {
                    cluster.set_alive(*id, false);
                }
            }
        }
    }
}

/// Per-connection state owned by one reactor's event loop.
struct Connection {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Encoded response bytes not yet accepted by the socket; `written` is
    /// the already-flushed prefix.
    outbound: Vec<u8>,
    written: usize,
    /// The currently registered epoll interest set.
    interest: u32,
    /// Framing is poisoned or the peer sent EOF: read nothing more, flush
    /// what is buffered, close when drained.
    closing: bool,
    /// The outbound buffer breached `max_outbound_bytes` (the peer stopped
    /// reading): the backlog was dropped and replaced with a final error
    /// frame, and every later response for this connection is dropped on
    /// arrival instead of buffered.
    overflowed: bool,
    /// Cumulative bytes ever appended to `outbound` (survives the buffer
    /// compaction in `append_frame`).
    enqueued_total: u64,
    /// Cumulative bytes ever accepted by the socket.
    flushed_total: u64,
    /// Traces waiting for their response frame to clear the socket, keyed
    /// by the `enqueued_total` watermark at which the frame's last byte
    /// sits. Frames append in order, so the queue stays sorted; once
    /// `flushed_total` passes a mark the trace is stamped
    /// [`Stage::WireFlushed`] and recorded.
    flush_marks: VecDeque<(u64, RequestTrace)>,
    /// A hello frame passed the auth check (always flipped by a hello on
    /// servers without an `auth_token`; requests on servers *with* one are
    /// refused until it is set).
    authenticated: bool,
}

impl Connection {
    fn has_backlog(&self) -> bool {
        self.written < self.outbound.len()
    }

    /// The epoll interest this connection should be registered for right
    /// now. A `closing` connection stops watching for input (the loop
    /// would refuse to read it, and level-triggered readiness would spin),
    /// and `EPOLLOUT` is only armed while a backlog exists (a writable
    /// idle socket is *always* ready).
    fn desired_interest(&self) -> u32 {
        let mut interest = 0;
        if !self.closing {
            interest |= EPOLLIN | EPOLLRDHUP;
        }
        if self.has_backlog() {
            interest |= EPOLLOUT;
        }
        interest
    }
}

/// One sharded event loop: a poller, the reactor's own connections, its
/// registry/outbox pair, and — on reactor 0 only — the listener plus the
/// hand-off state for every peer.
struct Reactor {
    index: usize,
    poller: Poller,
    /// `Some` on reactor 0 (the acceptor), `None` everywhere else.
    listener: Option<TcpListener>,
    /// Every reactor's waker, indexable by reactor: `wakers[index]` drains
    /// this reactor's own eventfd; the acceptor nudges peers after a
    /// hand-off.
    wakers: Vec<Arc<Waker>>,
    /// Every reactor's hand-off queue; this reactor adopts from
    /// `intakes[index]`.
    intakes: Vec<Intake>,
    /// Per-reactor open-connection counts (acceptor increments at
    /// hand-off, owner decrements at close).
    loads: Arc<Vec<AtomicUsize>>,
    /// Round-robin cursor breaking least-loaded ties in `pick_reactor`.
    rr: usize,
    server: Arc<InferenceServer>,
    stats: Arc<WireStatsCollector>,
    registry: Registry,
    completion_tx: Sender<InferResponse>,
    outbox_rx: Receiver<Outbound>,
    shutdown_flag: Arc<AtomicBool>,
    conns: HashMap<u64, Connection>,
    next_conn_id: u64,
    max_connections: usize,
    max_body_len: usize,
    max_outbound_bytes: usize,
    drain_timeout: Duration,
    scratch: Vec<u8>,
    /// The bound listen address; standalone hello replies advertise it.
    local_addr: SocketAddr,
    /// Shared cluster state (`None` on standalone servers).
    cluster: Option<Arc<ClusterState>>,
    /// When set, hellos must carry this token and requests must follow an
    /// authenticated hello.
    auth_token: Option<String>,
}

impl Reactor {
    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut draining = false;
        let mut drain_deadline = Instant::now();
        loop {
            events.clear();
            let timeout = if draining { Some(20) } else { None };
            if let Err(e) = self.poller.wait(&mut events, timeout) {
                // An unusable poller means the front-end cannot continue;
                // the panic surfaces through WireServer::shutdown's join.
                panic!("epoll wait failed: {e}");
            }
            let drained_events = std::mem::take(&mut events);
            for event in &drained_events {
                match event.token {
                    TOKEN_LISTENER => {
                        if !draining {
                            self.accept_ready();
                        }
                    }
                    TOKEN_WAKER => self.wakers[self.index].drain(),
                    Token(t) => self.handle_conn_event(t - CONN_BASE, event),
                }
            }
            events = drained_events;
            self.drain_intake();
            self.drain_outbox();
            self.retire_closing_conns();
            if self.shutdown_flag.load(Ordering::SeqCst) && !draining {
                draining = true;
                drain_deadline = Instant::now() + self.drain_timeout;
                // Stop accepting: deregister the listener (reactor 0).
                // Connected peers keep their sockets until the drain
                // completes.
                if let Some(listener) = &self.listener {
                    let _ = self.poller.deregister(listener.as_raw_fd());
                }
                // Final read sweep: requests already on the wire when the
                // shutdown was requested may still sit unread in kernel
                // buffers, invisible to the in-flight count. Pull them in
                // now so "drained" really means "everything the clients
                // sent before the shutdown is answered". (`drain_intake`
                // above already adopted — and `adopt` read — any
                // connection handed off just before the flag flipped.)
                let ids: Vec<u64> = self.conns.keys().copied().collect();
                for id in ids {
                    self.read_ready(id);
                }
            }
            if draining {
                let in_flight = self.registry.lock().expect("wire registry poisoned").len();
                // Outbox sends happen-before registry removals in the pump,
                // so re-draining *after* reading an empty in-flight count
                // guarantees every completed response has reached a
                // connection buffer before the backlog test below.
                self.drain_outbox();
                let backlog = self.conns.values().any(Connection::has_backlog);
                if (in_flight == 0 && !backlog) || Instant::now() >= drain_deadline {
                    break;
                }
            }
        }
        // Close every connection; completions still in flight are dropped
        // by the pump once it sees the outbox gone.
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            self.close_conn(id);
        }
    }

    /// Accepts every pending connection (reactor 0 only) and hands each to
    /// the least-loaded reactor — possibly itself. The global
    /// `max_connections` limit is enforced here, against the sum of every
    /// reactor's open count.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.as_ref().expect("only the acceptor sees listener events").accept() {
                Ok((stream, _peer)) => {
                    let open: usize = self.loads.iter().map(|l| l.load(Ordering::Relaxed)).sum();
                    if open >= self.max_connections {
                        self.stats.connection_rejected();
                        drop(stream); // The client sees a closed socket.
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        self.stats.connection_rejected();
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let target = self.pick_reactor();
                    // Claim the load slot before the hand-off so the next
                    // accept in this burst sees it.
                    self.loads[target].fetch_add(1, Ordering::Relaxed);
                    if target == self.index {
                        self.adopt(stream);
                    } else {
                        self.intakes[target].lock().expect("wire intake poisoned").push(stream);
                        self.wakers[target].wake();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// The reactor the next accepted connection goes to: least-loaded,
    /// with a rotating starting point so ties spread round-robin instead
    /// of piling onto reactor 0.
    fn pick_reactor(&mut self) -> usize {
        let n = self.loads.len();
        let mut best = self.rr % n;
        let mut best_load = self.loads[best].load(Ordering::Relaxed);
        for offset in 1..n {
            let candidate = (self.rr + offset) % n;
            let load = self.loads[candidate].load(Ordering::Relaxed);
            if load < best_load {
                best = candidate;
                best_load = load;
            }
        }
        self.rr = (self.rr + 1) % n;
        best
    }

    /// Adopts every connection the acceptor handed to this reactor since
    /// the last wake.
    fn drain_intake(&mut self) {
        let streams = {
            let mut intake = self.intakes[self.index].lock().expect("wire intake poisoned");
            std::mem::take(&mut *intake)
        };
        for stream in streams {
            self.adopt(stream);
        }
    }

    /// Registers a handed-off (or self-accepted) socket with this
    /// reactor's poller; the **owning** reactor counts the accept, so
    /// merged counters stay an exact per-reactor sum. The acceptor already
    /// claimed the load slot, so a failed adopt must release it.
    fn adopt(&mut self, stream: TcpStream) {
        let conn_id = self.next_conn_id;
        let token = Token(CONN_BASE + conn_id);
        if self.poller.register(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token).is_err() {
            self.stats.connection_rejected();
            self.loads[self.index].fetch_sub(1, Ordering::Relaxed);
            return;
        }
        self.next_conn_id += 1;
        self.stats.connection_accepted();
        self.conns.insert(
            conn_id,
            Connection {
                stream,
                decoder: FrameDecoder::new(self.max_body_len),
                outbound: Vec::new(),
                written: 0,
                interest: EPOLLIN | EPOLLRDHUP,
                closing: false,
                overflowed: false,
                enqueued_total: 0,
                flushed_total: 0,
                flush_marks: VecDeque::new(),
                authenticated: false,
            },
        );
        // Bytes may already be waiting (clients often write immediately
        // after connect, and the hand-off adds a scheduling delay): read
        // now instead of waiting a full poll round.
        self.read_ready(conn_id);
    }

    fn handle_conn_event(&mut self, conn_id: u64, event: &Event) {
        if !self.conns.contains_key(&conn_id) {
            return; // Already closed earlier in this iteration.
        }
        if event.readable() {
            self.read_ready(conn_id);
        }
        if self.conns.contains_key(&conn_id) && event.writable() {
            self.flush_conn(conn_id);
        }
    }

    /// Reads every byte the socket has, feeding the frame decoder and
    /// submitting each complete request. Stops at `WouldBlock`, EOF or a
    /// framing error.
    fn read_ready(&mut self, conn_id: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&conn_id) else { return };
            if conn.closing {
                // Poisoned framing or half-closed peer: ignore further
                // input; flush_conn retires the connection once drained.
                return;
            }
            let result = conn.stream.read(&mut self.scratch);
            match result {
                Ok(0) => {
                    // Peer finished sending. Keep the connection until every
                    // pipelined response went out, then close.
                    conn.closing = true;
                    let drained = !conn.has_backlog();
                    if drained && !self.conn_has_in_flight(conn_id) {
                        self.close_conn(conn_id);
                    } else {
                        self.sync_interest(conn_id);
                    }
                    return;
                }
                Ok(n) => {
                    self.stats.bytes_received(n as u64);
                    conn.decoder.feed(&self.scratch[..n]);
                    self.decode_ready(conn_id);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(conn_id);
                    return;
                }
            }
        }
    }

    /// Pulls every complete frame out of the connection's decoder.
    fn decode_ready(&mut self, conn_id: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&conn_id) else { return };
            let next = conn.decoder.next_frame();
            match next {
                Ok(Some(Frame::Request(frame))) => {
                    self.stats.frame_received();
                    if self.auth_token.is_some()
                        && !self.conns.get(&conn_id).is_some_and(|c| c.authenticated)
                    {
                        self.stats.request_rejected();
                        self.poison(
                            conn_id,
                            WireStatus::Unauthorized,
                            "authenticate with a hello frame before sending requests",
                        );
                        return;
                    }
                    let mut trace = RequestTrace::new();
                    trace.record(Stage::WireDecoded);
                    self.submit_wire_request(conn_id, frame, trace);
                }
                Ok(Some(Frame::Hello(hello))) => {
                    if self.handle_hello(conn_id, &hello).is_err() {
                        return; // Auth failed: the connection is poisoned.
                    }
                }
                Ok(Some(Frame::Response(_))) => {
                    // Clients must not send response frames.
                    self.stats.decode_error();
                    self.poison(conn_id, WireStatus::InvalidRequest, "unexpected response frame");
                    return;
                }
                Ok(Some(Frame::ShardMap(_))) => {
                    // Shard maps only ever flow server → client.
                    self.stats.decode_error();
                    self.poison(conn_id, WireStatus::InvalidRequest, "unexpected shard-map frame");
                    return;
                }
                Ok(None) => return,
                Err(error) => {
                    self.stats.decode_error();
                    let status = match error {
                        WireError::UnsupportedVersion(_) => WireStatus::UnsupportedVersion,
                        _ => WireStatus::InvalidRequest,
                    };
                    self.poison(conn_id, status, &error.to_string());
                    return;
                }
            }
        }
    }

    /// Answers a hello: checks the auth token (constant-time compare;
    /// mismatch poisons the connection with `Unauthorized` and returns
    /// `Err`), marks the connection authenticated, and replies with the
    /// node's current shard map — a standalone server publishes a
    /// single-node map so cluster-aware clients work against it unchanged.
    fn handle_hello(&mut self, conn_id: u64, hello: &HelloFrame) -> Result<(), ()> {
        if let Some(cluster) = &self.cluster {
            cluster.record_hello();
        }
        if let Some(expected) = &self.auth_token {
            let presented = hello.token.as_deref().unwrap_or("");
            if !constant_time_eq(presented.as_bytes(), expected.as_bytes()) {
                if let Some(cluster) = &self.cluster {
                    cluster.record_auth_failure();
                }
                self.poison(
                    conn_id,
                    WireStatus::Unauthorized,
                    "hello rejected: bad or missing auth token",
                );
                return Err(());
            }
        }
        if let Some(conn) = self.conns.get_mut(&conn_id) {
            conn.authenticated = true;
        }
        let map = match &self.cluster {
            Some(cluster) => cluster.map(),
            None => ShardMap::standalone(self.local_addr.to_string()),
        };
        self.append_frame(conn_id, None, |out| encode_shard_map_into(out, &map));
        Ok(())
    }

    /// Converts one decoded request frame into an [`crate::InferRequest`]
    /// and submits it. Request-level failures answer with an error frame
    /// and leave the connection open.
    fn submit_wire_request(&mut self, conn_id: u64, frame: RequestFrame, trace: RequestTrace) {
        let client_id = frame.id;
        let request = frame.into_request();
        // Cluster routing: a request for a shard this node does not own is
        // answered with a `NotMine` redirect naming the owners (connection
        // stays open — redirects are routing, not errors). Owning it as a
        // non-primary replica serves normally but counts a failover serve.
        if let Some(cluster) = &self.cluster {
            let (owners, version) = cluster.route(shard_hash(&request.key()));
            let me = cluster.node_id();
            if !owners.contains(&me) {
                cluster.record_redirect();
                let map = cluster.map();
                let addrs: Vec<&str> = owners.iter().filter_map(|id| map.addr_of(*id)).collect();
                let message = format!("owners={};version={version}", addrs.join(","));
                self.send_error_frame(conn_id, client_id, WireStatus::NotMine, &message);
                return;
            }
            if owners.first() != Some(&me) {
                cluster.record_failover_serve();
            }
        }
        // Holding the registry lock across the submit makes the insert
        // atomic with the id assignment: the pump cannot observe (and drop)
        // a completion before its registry entry exists.
        let submitted = {
            let mut registry = self.registry.lock().expect("wire registry poisoned");
            match self.server.submit_with_trace(request, self.completion_tx.clone(), trace) {
                Ok(server_id) => {
                    registry.insert(server_id, PendingWire { conn_id, client_id });
                    self.stats.set_in_flight(registry.len() as u64);
                    Ok(())
                }
                Err(e) => Err(e),
            }
        };
        if let Err(error) = submitted {
            let status = match &error {
                ServeError::InvalidRequest(_) => WireStatus::InvalidRequest,
                ServeError::ShuttingDown | ServeError::Timeout => WireStatus::ShuttingDown,
                ServeError::ShedLoad { .. } => WireStatus::ShedLoad,
            };
            // Shed requests are load management, not client mistakes: they
            // get their own per-priority counter instead of the rejected one.
            if let ServeError::ShedLoad { priority, .. } = &error {
                self.stats.request_shed(*priority);
            } else {
                self.stats.request_rejected();
            }
            self.send_error_frame(conn_id, client_id, status, &error.to_string());
        }
    }

    /// Encodes an error frame into the connection's outbound buffer.
    fn send_error_frame(
        &mut self,
        conn_id: u64,
        client_id: u64,
        status: WireStatus,
        message: &str,
    ) {
        self.stats.error_frame_sent();
        self.append_frame(conn_id, None, |out| encode_error_into(out, client_id, status, message));
    }

    /// Framing is broken: answer with a final error frame (under the
    /// reserved [`POISON_ID`], since no request can be blamed), then stop
    /// reading and close once the outbound buffer drains. `closing` is set
    /// **before** the error frame goes out so the flush that writes its
    /// last byte also retires the connection.
    fn poison(&mut self, conn_id: u64, status: WireStatus, message: &str) {
        if let Some(conn) = self.conns.get_mut(&conn_id) {
            conn.closing = true;
        }
        self.send_error_frame(conn_id, POISON_ID, status, message);
    }

    /// Appends one frame to a connection's outbound buffer — `encode`
    /// serialises it **directly into the buffer**, no intermediate frame
    /// `Vec` — and flushes as much as the socket accepts right now. A
    /// `trace` rides along as a flush mark and is stamped
    /// [`Stage::WireFlushed`] once the frame's last byte reaches the
    /// socket.
    fn append_frame(
        &mut self,
        conn_id: u64,
        trace: Option<RequestTrace>,
        encode: impl FnOnce(&mut Vec<u8>),
    ) {
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            // Completed after its connection went away: the bytes are
            // dropped, but the request itself still finished — record its
            // trace without a flush stamp.
            if let Some(trace) = trace {
                self.server.telemetry().record_completed(trace);
            }
            return;
        };
        if conn.overflowed {
            // The peer already breached the cap; buffering more would just
            // regrow what was dropped. Same treatment as a gone connection.
            if let Some(trace) = trace {
                self.server.telemetry().record_completed(trace);
            }
            return;
        }
        // Compact the flushed prefix before growing the buffer.
        if conn.written == conn.outbound.len() {
            conn.outbound.clear();
            conn.written = 0;
        } else if conn.written > 4096 {
            conn.outbound.drain(..conn.written);
            conn.written = 0;
        }
        let before = conn.outbound.len();
        encode(&mut conn.outbound);
        conn.enqueued_total += (conn.outbound.len() - before) as u64;
        if let Some(trace) = trace {
            conn.flush_marks.push_back((conn.enqueued_total, trace));
        }
        if conn.outbound.len() - conn.written > self.max_outbound_bytes {
            self.poison_overflowed(conn_id);
            return;
        }
        self.flush_conn(conn_id);
    }

    /// The connection's unflushed backlog breached the configured cap: the
    /// peer submitted requests but stopped reading responses. Drop the
    /// backlog (its traces are recorded without a flush stamp), replace it
    /// with one final error frame, and poison the connection so it closes
    /// as soon as that frame drains — the server's memory for a slow
    /// reader is bounded by `max_outbound_bytes` plus one error frame.
    fn poison_overflowed(&mut self, conn_id: u64) {
        self.stats.outbound_overflow();
        self.stats.error_frame_sent();
        let message = format!(
            "outbound buffer exceeded {} bytes; read your responses",
            self.max_outbound_bytes
        );
        let Some(conn) = self.conns.get_mut(&conn_id) else { return };
        conn.overflowed = true;
        conn.closing = true;
        conn.outbound.truncate(conn.written);
        // `flushed_total` can never reach the dropped frames' watermarks,
        // so retire their traces here rather than leaving them queued.
        let dropped: Vec<RequestTrace> =
            conn.flush_marks.drain(..).map(|(_, trace)| trace).collect();
        let before = conn.outbound.len();
        encode_error_into(&mut conn.outbound, POISON_ID, WireStatus::ShuttingDown, &message);
        conn.enqueued_total += (conn.outbound.len() - before) as u64;
        for trace in dropped {
            self.server.telemetry().record_completed(trace);
        }
        self.flush_conn(conn_id);
    }

    /// Writes the outbound backlog until the socket blocks; keeps the epoll
    /// interest set in sync with whether a backlog remains, and retires
    /// `closing` connections once everything is out.
    fn flush_conn(&mut self, conn_id: u64) {
        let Some(conn) = self.conns.get_mut(&conn_id) else { return };
        let mut dead = false;
        let mut sent = 0u64;
        while conn.written < conn.outbound.len() {
            let result = conn.stream.write(&conn.outbound[conn.written..]);
            match result {
                Ok(0) => {
                    dead = true;
                    break;
                }
                Ok(n) => {
                    conn.written += n;
                    sent += n as u64;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        conn.flushed_total += sent;
        let mut flushed_traces: Vec<RequestTrace> = Vec::new();
        while conn.flush_marks.front().is_some_and(|(mark, _)| *mark <= conn.flushed_total) {
            let (_, mut trace) = conn.flush_marks.pop_front().expect("front checked");
            trace.record(Stage::WireFlushed);
            flushed_traces.push(trace);
        }
        self.stats.bytes_sent(sent);
        for trace in flushed_traces {
            self.server.telemetry().record_completed(trace);
        }
        if dead {
            self.close_conn(conn_id);
            return;
        }
        let Some(conn) = self.conns.get_mut(&conn_id) else { return };
        let fully_flushed = !conn.has_backlog();
        if fully_flushed {
            conn.outbound.clear();
            conn.written = 0;
        }
        // Retiring a drained `closing` connection is deferred to
        // `retire_closing_conns`: deciding here would race the pump, which
        // removes the registry entry only *after* the outbox send — a
        // "no in-flight" observation at this point can coincide with the
        // final response sitting undrained in the outbox channel, and
        // closing now would drop it. The sweep runs at the end of every
        // loop iteration (and the pump wakes the loop after each removal),
        // so deferral costs no latency.
        self.sync_interest(conn_id);
    }

    /// Re-registers the connection's epoll interest if it changed.
    fn sync_interest(&mut self, conn_id: u64) {
        let Some(conn) = self.conns.get_mut(&conn_id) else { return };
        let wanted = conn.desired_interest();
        if wanted != conn.interest {
            conn.interest = wanted;
            let fd = conn.stream.as_raw_fd();
            let _ = self.poller.reregister(fd, wanted, Token(CONN_BASE + conn_id));
        }
    }

    /// Closes every `closing` connection that has flushed its backlog and
    /// has no request left in flight — the **only** place a drained
    /// connection retires (a connection with interest 0 and reads refused
    /// is otherwise never re-examined; the pump wakes the loop after every
    /// registry removal, and this sweep, run each iteration, acts on that
    /// wake). Without it, repeated connect/half-close cycles would leak
    /// connection slots until the `max_connections` limit starved real
    /// clients.
    ///
    /// Ordering matters: the pump removes a registry entry only *after*
    /// handing the response to the outbox, so an empty in-flight count
    /// guarantees any final response is already in the channel — but
    /// possibly not yet in the connection buffer. Re-drain after the
    /// in-flight check and re-test the backlog before closing, otherwise
    /// the last response of a half-closed connection can be dropped on the
    /// floor (the client sees EOF instead of its answer).
    fn retire_closing_conns(&mut self) {
        let candidates: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, conn)| conn.closing && !conn.has_backlog())
            .map(|(&id, _)| id)
            .collect();
        for id in candidates {
            if self.conn_has_in_flight(id) {
                continue;
            }
            self.drain_outbox();
            // If the drain surfaced a late response, `append_frame`'s
            // flush may have cleared it again already; close only when the
            // backlog really is empty. A partially flushed remainder gets
            // EPOLLOUT, and the flush completion's loop iteration re-runs
            // this sweep.
            if self.conns.get(&id).is_none_or(|conn| !conn.has_backlog()) {
                self.close_conn(id);
            }
        }
    }

    /// Whether any submitted request from this connection is still
    /// unanswered.
    fn conn_has_in_flight(&self, conn_id: u64) -> bool {
        self.registry.lock().expect("wire registry poisoned").values().any(|p| p.conn_id == conn_id)
    }

    /// Moves every pump-delivered response into its connection's buffer,
    /// encoding each frame straight into the outbound bytes.
    fn drain_outbox(&mut self) {
        loop {
            match self.outbox_rx.try_recv() {
                Ok((conn_id, client_id, response)) => {
                    self.stats.frame_sent();
                    self.append_frame(conn_id, Some(response.trace.clone()), |out| {
                        encode_response_into(out, client_id, &response)
                    });
                    let len = self.registry.lock().expect("wire registry poisoned").len();
                    self.stats.set_in_flight(len as u64);
                }
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => return,
            }
        }
    }

    fn close_conn(&mut self, conn_id: u64) {
        if let Some(conn) = self.conns.remove(&conn_id) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.stats.connection_closed();
            self.loads[self.index].fetch_sub(1, Ordering::Relaxed);
            // Responses that never cleared the socket still had their
            // request completed: record their traces without a flush stamp.
            for (_, trace) in conn.flush_marks {
                self.server.telemetry().record_completed(trace);
            }
            // The stream drops (and closes) here; in-flight requests from
            // this connection still execute, their responses are dropped by
            // `append_frame` when they complete.
        }
    }
}
