//! DNN workload definitions for the dual-side sparse Tensor Core evaluation.
//!
//! The paper evaluates five networks (Table II / Fig. 22): VGG-16,
//! ResNet-18 and Mask R-CNN (convolutional, pruned with AGP), a 2+4-layer
//! LSTM language model (AGP) and the BERT-base encoder (movement pruning).
//! This crate provides:
//!
//! * per-layer shape tables for those networks ([`networks`]),
//! * the pruning schemes used to create weight sparsity ([`pruning`]), and
//! * synthetic activation generators that reproduce the ReLU-induced
//!   activation sparsity the accelerator exploits ([`activation`]).
//!
//! The real checkpoints and datasets are not reproducible here (and the
//! accelerator never sees accuracy anyway); what matters architecturally is
//! each layer's *shape* and *sparsity*, which these tables encode with
//! values in the ranges the paper reports.
//!
//! # Example
//! ```
//! use dsstc_models::networks;
//! let vgg = networks::vgg16();
//! assert!(vgg.layers().len() >= 10);
//! assert!(vgg.total_macs() > 1_000_000_000);
//! ```

#![deny(missing_docs)]

pub mod activation;
pub mod layer;
pub mod networks;
pub mod pruning;

pub use crate::activation::{activation_feature_map, activation_matrix};
pub use crate::layer::{Layer, LayerKind, Network};
pub use crate::pruning::{agp_target_sparsity, prune_magnitude, prune_n_of_m, AgpSchedule};
