//! CSR-encoded sparse im2col — the encoding baseline of Table III.
//!
//! The feature map is stored as a CSR matrix whose rows are `(channel, y)`
//! pairs and whose columns are pixel x-coordinates. Reading the element at a
//! given window position then needs a row-pointer load followed by a search
//! of the row's column indices — two data-dependent reads per access, which
//! is exactly the overhead the paper blames for CSR im2col being one to two
//! orders of magnitude slower than the dense copy at moderate sparsity.

use dsstc_formats::CsrMatrix;
use dsstc_tensor::{ConvShape, FeatureMap, Matrix};

use super::Im2colCost;

/// CSR-based sparse im2col lowering.
#[derive(Clone, Copy, Debug, Default)]
pub struct CsrIm2col;

impl CsrIm2col {
    /// Creates the lowering.
    pub fn new() -> Self {
        CsrIm2col
    }

    /// Encodes a feature map into the `(C*H) x W` CSR layout this lowering
    /// consumes.
    pub fn encode(&self, input: &FeatureMap) -> CsrMatrix {
        let mut flat = Matrix::zeros(input.channels() * input.height(), input.width());
        for c in 0..input.channels() {
            for y in 0..input.height() {
                for x in 0..input.width() {
                    flat[(c * input.height() + y, x)] = input.get(c, y, x);
                }
            }
        }
        CsrMatrix::encode(&flat)
    }

    /// Produces the lowered matrix by looking every window element up in the
    /// CSR structure (binary search within the row), mimicking the
    /// data-dependent access pattern of a CSR im2col kernel.
    ///
    /// # Panics
    /// Panics if the CSR encoding does not match `shape`.
    pub fn lower(&self, encoded: &CsrMatrix, shape: &ConvShape) -> Matrix {
        assert_eq!(encoded.rows(), shape.c * shape.h, "CSR row count does not match shape");
        assert_eq!(encoded.cols(), shape.w, "CSR column count does not match shape");
        let (oh, ow) = (shape.out_h(), shape.out_w());
        let mut out = Matrix::zeros(oh * ow, shape.k * shape.k * shape.c);
        let row_ptr = encoded.row_ptr();
        let col_idx = encoded.col_idx();
        let values = encoded.values();
        for oy in 0..oh {
            for ox in 0..ow {
                let row = oy * ow + ox;
                for c in 0..shape.c {
                    for ky in 0..shape.k {
                        let iy = (oy * shape.stride + ky) as isize - shape.padding as isize;
                        if iy < 0 || iy as usize >= shape.h {
                            continue;
                        }
                        let csr_row = c * shape.h + iy as usize;
                        let (start, end) = (row_ptr[csr_row], row_ptr[csr_row + 1]);
                        for kx in 0..shape.k {
                            let ix = (ox * shape.stride + kx) as isize - shape.padding as isize;
                            if ix < 0 || ix as usize >= shape.w {
                                continue;
                            }
                            // Data-dependent binary search for the column.
                            let target = ix as usize;
                            if let Ok(pos) = col_idx[start..end].binary_search(&target) {
                                out[(row, (c * shape.k + ky) * shape.k + kx)] = values[start + pos];
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Cost of the CSR lowering: every window position pays the row-pointer
    /// read plus a dependent search of the row's indices, and every hit pays
    /// the value read plus the lowered write (explicit form).
    pub fn explicit_cost(&self, encoded: &CsrMatrix, shape: &ConvShape) -> Im2colCost {
        let lowered = shape.lowered_elements();
        let density = 1.0 - encoded.sparsity();
        let touched_nnz = (lowered as f64 * density) as u64;
        // Two dependent loads per access (row pointer + column index) plus
        // the search compare loop over ~log2(row nnz) entries.
        let avg_row_nnz = (encoded.nnz() as f64 / encoded.rows() as f64).max(1.0);
        let search_ops = (avg_row_nnz.log2().ceil() as u64).max(1);
        Im2colCost {
            scalar_ops: lowered * (2 + search_ops) + touched_nnz * 2,
            popc_ops: 0,
            dram_bytes_read: encoded.storage().total() + lowered * 8, // dependent index traffic
            dram_bytes_written: touched_nnz * 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::im2col::dense::DenseIm2col;

    fn random_input(shape: &ConvShape, sparsity: f64, seed: u64) -> FeatureMap {
        FeatureMap::random_sparse(shape, sparsity, seed)
    }

    #[test]
    fn csr_lowering_matches_dense_lowering() {
        for &sparsity in &[0.0, 0.5, 0.9, 0.99] {
            let shape = ConvShape::square(10, 3, 2, 3, 1, 1);
            let input = random_input(&shape, sparsity, 5);
            let csr = CsrIm2col::new();
            let lowered = csr.lower(&csr.encode(&input), &shape);
            let reference = DenseIm2col::new().lower(&input, &shape);
            assert_eq!(lowered, reference, "sparsity {sparsity}");
        }
    }

    #[test]
    fn csr_lowering_with_stride_matches_dense() {
        let shape = ConvShape::square(11, 2, 2, 3, 2, 1);
        let input = random_input(&shape, 0.6, 6);
        let csr = CsrIm2col::new();
        let lowered = csr.lower(&csr.encode(&input), &shape);
        assert_eq!(lowered, DenseIm2col::new().lower(&input, &shape));
    }

    #[test]
    fn encode_layout_has_channel_major_rows() {
        let shape = ConvShape::square(4, 2, 1, 1, 1, 0);
        let input = random_input(&shape, 0.5, 7);
        let enc = CsrIm2col::new().encode(&input);
        assert_eq!(enc.rows(), 8);
        assert_eq!(enc.cols(), 4);
        assert_eq!(enc.nnz(), input.nnz());
    }

    #[test]
    fn cost_decreases_with_sparsity() {
        let shape = ConvShape::square(28, 32, 32, 3, 1, 1);
        let csr = CsrIm2col::new();
        let dense_cost = csr.explicit_cost(&csr.encode(&random_input(&shape, 0.0, 8)), &shape);
        let sparse_cost = csr.explicit_cost(&csr.encode(&random_input(&shape, 0.99, 8)), &shape);
        assert!(sparse_cost.scalar_ops < dense_cost.scalar_ops);
        assert!(sparse_cost.dram_bytes_written < dense_cost.dram_bytes_written);
    }

    #[test]
    fn cost_is_much_higher_than_dense_im2col_at_low_sparsity() {
        let shape = ConvShape::square(28, 32, 32, 3, 1, 1);
        let csr = CsrIm2col::new();
        let csr_cost = csr.explicit_cost(&csr.encode(&random_input(&shape, 0.0, 9)), &shape);
        let dense_cost = DenseIm2col::new().explicit_cost(&shape);
        assert!(csr_cost.scalar_ops > 2 * dense_cost.scalar_ops);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn wrong_shape_panics() {
        let shape = ConvShape::square(8, 2, 1, 3, 1, 1);
        let other = ConvShape::square(6, 2, 1, 3, 1, 1);
        let input = random_input(&other, 0.5, 10);
        let csr = CsrIm2col::new();
        let _ = csr.lower(&csr.encode(&input), &shape);
    }
}
