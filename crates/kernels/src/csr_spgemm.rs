//! cuSparse-style CSR SpGEMM baseline (Gustavson's row-wise algorithm).
//!
//! This models what `cusparseScsrgemm`-class kernels do: both operands are
//! converted to CSR, a symbolic pass sizes the output, a numeric pass
//! multiplies row-by-row into per-row accumulators (hash/dense workspace),
//! and the output is written back in CSR. None of it can use Tensor Cores,
//! the inner loops are divergent and latency-bound, and multiple passes over
//! workspace memory add large constant costs — which is why the paper finds
//! cuSparse only beats CUTLASS beyond ~95 % sparsity (Fig. 21).

use dsstc_formats::CsrMatrix;
use dsstc_sim::{GpuConfig, WorkloadProfile};
use dsstc_tensor::{GemmShape, Matrix};

/// Scalar operations charged per multiply-accumulate of the numeric phase
/// (hash probe + insert + FMA on divergent warps).
const OPS_PER_MAC: u64 = 24;
/// Effective slowdown of divergent, latency-bound inner loops relative to
/// the peak scalar issue rate.
const DIVERGENCE_FACTOR: u64 = 4;
/// Scalar operations charged per non-zero of A for fetching its row extent
/// and column index (two dependent loads plus loop bookkeeping).
const OPS_PER_A_NNZ: u64 = 8;

/// CSR SpGEMM kernel model (cuSparse stand-in).
#[derive(Clone, Debug)]
pub struct CsrSpGemm {
    config: GpuConfig,
}

impl CsrSpGemm {
    /// Creates the model for the given GPU.
    pub fn new(config: GpuConfig) -> Self {
        CsrSpGemm { config }
    }

    /// Exact number of multiply-accumulates Gustavson's algorithm performs
    /// for `A * B`: for every non-zero `a[i][k]`, one MAC per non-zero of B
    /// row `k`.
    pub fn macs(a: &CsrMatrix, b: &CsrMatrix) -> u64 {
        let b_row_nnz: Vec<u64> = (0..b.rows()).map(|r| b.row_nnz(r) as u64).collect();
        let mut macs = 0u64;
        for i in 0..a.rows() {
            for (k, _) in a.row_iter(i) {
                macs += b_row_nnz[k];
            }
        }
        macs
    }

    /// Estimates the number of non-zeros of the output via the standard
    /// collision model: each output row of width `N` receives `macs_row`
    /// scattered contributions, so its expected non-zero count is
    /// `N * (1 - (1 - 1/N)^macs_row)`.
    pub fn estimated_output_nnz(a: &CsrMatrix, b: &CsrMatrix) -> u64 {
        let n = b.cols() as f64;
        let b_row_nnz: Vec<u64> = (0..b.rows()).map(|r| b.row_nnz(r) as u64).collect();
        let mut total = 0.0f64;
        for i in 0..a.rows() {
            let macs_row: u64 = a.row_iter(i).map(|(k, _)| b_row_nnz[k]).sum();
            total += n * (1.0 - (1.0 - 1.0 / n).powf(macs_row as f64));
        }
        total.ceil() as u64
    }

    /// Builds the workload profile of `A * B` with both operands in CSR.
    pub fn profile(&self, a: &CsrMatrix, b: &CsrMatrix) -> WorkloadProfile {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        let shape = GemmShape::new(a.rows(), b.cols(), a.cols());
        let macs = Self::macs(a, b);
        let out_nnz = Self::estimated_output_nnz(a, b);

        let mut p = WorkloadProfile::new(format!("csr-spgemm-{shape}"));
        // Symbolic + numeric phases both traverse the multiplication
        // structure; only the numeric phase does FMAs, but both pay the
        // hash-insert and index arithmetic.
        let traversal_ops = macs * OPS_PER_MAC + a.nnz() as u64 * OPS_PER_A_NNZ;
        p.scalar_ops = 2 * traversal_ops * DIVERGENCE_FACTOR;
        // One warp-sized row strip per thread block; cuSparse launches at
        // least enough blocks to occupy every SM even for short matrices.
        p.thread_blocks = (a.rows() as u64).div_ceil(4).max(self.config.num_sms as u64);

        let a_bytes = a.storage().total();
        let b_bytes = b.storage().total();
        let out_bytes = out_nnz * 8 + (a.rows() as u64 + 1) * 4; // CSR output
                                                                 // The runtime also has to build A's CSR from the dense activation
                                                                 // matrix (activations are produced dense by the previous layer), and
                                                                 // both phases re-read the operands; the numeric phase additionally
                                                                 // streams a per-row workspace of the output width.
        let dense_a_bytes = (shape.m * shape.k) as u64 * 2;
        let workspace_bytes = (shape.m * shape.n) as u64 * 4;
        p.dram_bytes_read = dense_a_bytes + 2 * (a_bytes + b_bytes) + workspace_bytes;
        p.dram_bytes_written = a_bytes + out_bytes + workspace_bytes / 2;
        p
    }

    /// Functionally computes `A * B` (returning a dense result for easy
    /// comparison) together with the profile.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn execute(&self, a: &CsrMatrix, b: &CsrMatrix) -> (Matrix, WorkloadProfile) {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for (k, a_val) in a.row_iter(i) {
                for (j, b_val) in b.row_iter(k) {
                    out[(i, j)] += a_val * b_val;
                }
            }
        }
        (out, self.profile(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense_gemm::DenseGemm;
    use dsstc_sim::GpuTimingModel;
    use dsstc_tensor::SparsityPattern;

    fn csr(rows: usize, cols: usize, sparsity: f64, seed: u64) -> CsrMatrix {
        CsrMatrix::encode(&Matrix::random_sparse(
            rows,
            cols,
            sparsity,
            SparsityPattern::Uniform,
            seed,
        ))
    }

    #[test]
    fn execute_matches_dense_reference() {
        let a_dense = Matrix::random_sparse(24, 32, 0.7, SparsityPattern::Uniform, 1);
        let b_dense = Matrix::random_sparse(32, 20, 0.8, SparsityPattern::Uniform, 2);
        let kernel = CsrSpGemm::new(GpuConfig::v100());
        let (out, _) = kernel.execute(&CsrMatrix::encode(&a_dense), &CsrMatrix::encode(&b_dense));
        assert!(out.approx_eq(&a_dense.matmul(&b_dense), 1e-4));
    }

    #[test]
    fn macs_counts_exactly() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[2.0, 3.0]]);
        let b = Matrix::from_rows(&[&[0.0, 4.0, 5.0], &[6.0, 0.0, 0.0]]);
        // Row 0 of A has nnz at k=0 -> B row 0 has 2 nnz. Row 1: k=0 (2) +
        // k=1 (1) = 3. Total 5.
        assert_eq!(CsrSpGemm::macs(&CsrMatrix::encode(&a), &CsrMatrix::encode(&b)), 5);
    }

    #[test]
    fn estimated_output_nnz_bounds() {
        let a = csr(64, 64, 0.9, 3);
        let b = csr(64, 64, 0.9, 4);
        let est = CsrSpGemm::estimated_output_nnz(&a, &b);
        assert!(est <= 64 * 64);
        let (out, _) = CsrSpGemm::new(GpuConfig::v100()).execute(&a, &b);
        let actual = out.nnz() as u64;
        // The collision model should be within a factor of two of reality.
        assert!(est >= actual / 2 && est <= actual * 2 + 16, "est {est} actual {actual}");
    }

    #[test]
    fn cusparse_loses_to_cutlass_at_moderate_sparsity() {
        // A at 90%, B at 99% — the paper reports cuSparse ~1.75x *slower*.
        // (The gap only opens at sizes where CUTLASS is compute-bound, so use
        // a 2048-cubed problem.)
        let model = GpuTimingModel::v100();
        let shape = GemmShape::new(2048, 2048, 2048);
        let dense_t = model.estimate(&DenseGemm::new(GpuConfig::v100()).profile(&shape));
        let a = csr(2048, 2048, 0.90, 5);
        let b = csr(2048, 2048, 0.99, 6);
        let sparse_t = model.estimate(&CsrSpGemm::new(GpuConfig::v100()).profile(&a, &b));
        assert!(
            sparse_t.time_us() > dense_t.time_us(),
            "cuSparse ({} us) should lose to CUTLASS ({} us) at 90%/99%",
            sparse_t.time_us(),
            dense_t.time_us()
        );
    }

    #[test]
    fn cusparse_wins_only_at_extreme_sparsity() {
        let model = GpuTimingModel::v100();
        let shape = GemmShape::new(1024, 1024, 1024);
        let dense_t = model.estimate(&DenseGemm::new(GpuConfig::v100()).profile(&shape));
        let a = csr(1024, 1024, 0.999, 7);
        let b = csr(1024, 1024, 0.99, 8);
        let sparse_t = model.estimate(&CsrSpGemm::new(GpuConfig::v100()).profile(&a, &b));
        assert!(
            sparse_t.time_us() < dense_t.time_us(),
            "cuSparse ({} us) should beat CUTLASS ({} us) at 99.9%/99%",
            sparse_t.time_us(),
            dense_t.time_us()
        );
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_shapes_panic() {
        let a = csr(4, 4, 0.5, 1);
        let b = csr(8, 4, 0.5, 2);
        let _ = CsrSpGemm::new(GpuConfig::v100()).profile(&a, &b);
    }
}
