//! The worker pool: OS threads that pull batches from the scheduler,
//! execute them through the pre-encoded model on the dual-side SpGEMM
//! kernel, and fan responses back out per request.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use dsstc_tensor::Matrix;

use crate::batcher::{Batch, BatchScheduler};
use crate::repository::ModelRepository;
use crate::request::InferResponse;
use crate::stats::StatsCollector;
use crate::timing::BatchTimingModel;

/// Everything a worker thread needs, shared by `Arc`.
#[derive(Debug)]
pub(crate) struct WorkerContext {
    pub scheduler: Arc<BatchScheduler>,
    pub repository: Arc<ModelRepository>,
    pub timing: Arc<BatchTimingModel>,
    pub stats: Arc<StatsCollector>,
}

/// A pool of worker threads draining the batch scheduler.
#[derive(Debug)]
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads that run until the scheduler shuts down and
    /// drains.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub(crate) fn spawn(workers: usize, context: Arc<WorkerContext>) -> Self {
        assert!(workers > 0, "at least one worker is required");
        let handles = (0..workers)
            .map(|index| {
                let context = Arc::clone(&context);
                std::thread::Builder::new()
                    .name(format!("dsstc-serve-worker-{index}"))
                    .spawn(move || worker_loop(index, &context))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        WorkerPool { handles }
    }

    /// Number of worker threads.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Whether the pool has no threads (never true for a spawned pool).
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Waits for every worker to exit (call after the scheduler's
    /// `shutdown`).
    pub fn join(self) {
        for handle in self.handles {
            // A panicking worker already poisoned the shared state; surface
            // it instead of hanging the caller.
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

fn worker_loop(index: usize, context: &WorkerContext) {
    while let Some(batch) = context.scheduler.next_batch() {
        execute_batch(index, context, batch);
    }
}

/// Runs one batch end-to-end: fetch the encoded model (hitting the encode
/// cache after the first request), stack member features into one larger-M
/// GEMM chain, execute, split the rows back out, and answer every request.
fn execute_batch(index: usize, context: &WorkerContext, batch: Batch) {
    let started = Instant::now();
    let model = context.repository.get(batch.key);
    let batch_size = batch.len();

    // Stack member features row-wise: the batch runs as ONE GEMM chain with
    // M = sum of member rows.
    let cols = model.input_dim;
    let mut stacked = Matrix::zeros(batch.total_rows(), cols);
    let mut row = 0;
    for request in &batch.requests {
        stacked.set_tile(row, 0, &request.features);
        row += request.features.rows();
    }

    let output = model.forward(context.repository.kernel(), &stacked);
    let modelled_batch_us = context.timing.batched_us(&model, batch_size);
    let modelled_request_us = modelled_batch_us / batch_size as f64;
    let execute_us = started.elapsed().as_secs_f64() * 1e6;

    let queue_us: Vec<f64> = batch
        .requests
        .iter()
        .map(|r| started.duration_since(r.enqueued).as_secs_f64() * 1e6)
        .collect();
    context.stats.record_batch(index, &queue_us, execute_us, modelled_request_us);

    let mut row = 0;
    for (request, wait_us) in batch.requests.into_iter().zip(queue_us) {
        let rows = request.features.rows();
        let response = InferResponse {
            id: request.id,
            model: batch.key.model,
            output: output.tile(row, 0, rows, output.cols()),
            queue_us: wait_us,
            execute_us,
            modelled_batch_us,
            modelled_request_us,
            batch_size,
            worker: index,
        };
        row += rows;
        // A dropped receiver (caller gave up) is not an error for the
        // server; the work is still recorded in the stats.
        let _ = request.response_tx.send(response);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::{BatchPolicy, PendingRequest};
    use crate::request::{ModelId, ModelKey};
    use dsstc_sim::GpuConfig;
    use std::sync::mpsc;
    use std::time::Duration;

    fn context(max_batch: usize) -> Arc<WorkerContext> {
        Arc::new(WorkerContext {
            scheduler: Arc::new(BatchScheduler::new(BatchPolicy {
                max_batch,
                max_queue_wait: Duration::from_millis(1),
            })),
            repository: Arc::new(ModelRepository::new(GpuConfig::v100(), 32)),
            timing: Arc::new(BatchTimingModel::new(GpuConfig::v100())),
            stats: Arc::new(StatsCollector::new()),
        })
    }

    #[test]
    fn batch_outputs_split_back_to_the_right_requests() {
        let ctx = context(4);
        let key = ModelKey::new(ModelId::BertBase, None);
        let mut rxs = Vec::new();
        let mut requests = Vec::new();
        for id in 0..3u64 {
            let (tx, rx) = mpsc::channel();
            let features =
                Matrix::random_sparse(2, 32, 0.3, dsstc_tensor::SparsityPattern::Uniform, id + 1);
            requests.push(PendingRequest {
                id,
                key,
                features,
                response_tx: tx,
                enqueued: Instant::now(),
            });
            rxs.push(rx);
        }
        // Reference: run each request alone through the same encoded model.
        let model = ctx.repository.get(key);
        let singles: Vec<Matrix> =
            requests.iter().map(|r| model.forward(ctx.repository.kernel(), &r.features)).collect();

        execute_batch(0, &ctx, Batch { key, requests });
        for (id, (rx, single)) in rxs.into_iter().zip(singles).enumerate() {
            let response = rx.recv_timeout(Duration::from_secs(5)).expect("response arrives");
            assert_eq!(response.id, id as u64);
            assert_eq!(response.batch_size, 3);
            assert_eq!(response.worker, 0);
            assert!(response.output.approx_eq(&single, 1e-4), "request {id}");
            assert!(response.modelled_batch_us > 0.0);
            assert!((response.modelled_request_us - response.modelled_batch_us / 3.0).abs() < 1e-9);
        }
        let stats = ctx.stats.snapshot(0, 1, 0.0);
        assert_eq!(stats.completed_requests, 3);
        assert_eq!(stats.executed_batches, 1);
    }

    #[test]
    fn pool_drains_scheduler_and_exits_on_shutdown() {
        let ctx = context(2);
        let key = ModelKey::new(ModelId::RnnLm, Some(0.9));
        let mut rxs = Vec::new();
        for id in 0..5u64 {
            let (tx, rx) = mpsc::channel();
            assert!(ctx.scheduler.enqueue(PendingRequest {
                id,
                key,
                features: Matrix::zeros(1, 32),
                response_tx: tx,
                enqueued: Instant::now(),
            }));
            rxs.push(rx);
        }
        let pool = WorkerPool::spawn(2, Arc::clone(&ctx));
        assert_eq!(pool.len(), 2);
        for rx in &rxs {
            let _ = rx.recv_timeout(Duration::from_secs(30)).expect("response arrives");
        }
        ctx.scheduler.shutdown();
        pool.join();
        let stats = ctx.stats.snapshot(0, 0, 0.0);
        assert_eq!(stats.completed_requests, 5);
        assert!(stats.batch_histogram.len() <= 2, "batches of at most max_batch");
    }
}
