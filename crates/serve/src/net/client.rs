//! A small blocking client for the wire protocol, used by the tests, the
//! `serve_client` example and the `serve_throughput --wire` sweep.
//!
//! One [`WireClient`] wraps one TCP connection. Requests **pipeline**: any
//! number may be sent before the first response is read, and responses
//! arrive in *completion* order (the server batches across connections), so
//! callers correlate by the echoed id. [`WireClient::infer`] is the
//! one-shot convenience doing a single send + receive.
//!
//! [`ClusterClient`] layers shard-aware routing on top: it learns the
//! cluster's [`ShardMap`] from the hello exchange, keeps one [`WireClient`]
//! per node it has talked to, routes every request to its shard's primary,
//! follows `NotMine` redirects with bounded retries and fails over to the
//! next replica when a node dies mid-request (inference is deterministic,
//! so a resend is idempotent).

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use crate::cluster::{shard_hash, HashRing, ShardMap};
use crate::net::frame::{
    encode_hello_into, encode_request_into, Frame, FrameDecoder, RequestFrame, ResponseBody,
    ResponseFrame, WireError, WireStatus, RESPONSE_HEADROOM,
};
use crate::request::InferRequest;

/// A blocking connection to a [`crate::net::WireServer`].
#[derive(Debug)]
pub struct WireClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    scratch: Vec<u8>,
    /// Reused per [`WireClient::send`]: the request frame is encoded in
    /// place, so steady-state sends allocate nothing.
    encode_buf: Vec<u8>,
    next_id: u64,
    /// Request-side frame bound; the response decoder allows
    /// [`RESPONSE_HEADROOM`] on top (a response to a legal request is that
    /// much larger than the request, never more).
    max_frame_len: usize,
}

impl WireClient {
    /// Connects to `addr`, expecting the server's default
    /// `max_frame_len`. A server configured with a larger bound needs
    /// [`WireClient::with_max_frame_len`] to match, or its largest legal
    /// responses would trip the client's own decoder.
    pub fn connect(addr: SocketAddr) -> std::io::Result<WireClient> {
        let max_frame_len = crate::config::ServeConfig::default().max_frame_len;
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(WireClient {
            stream,
            decoder: FrameDecoder::new(max_frame_len + RESPONSE_HEADROOM),
            scratch: vec![0u8; 64 * 1024],
            encode_buf: Vec::new(),
            next_id: 0,
            max_frame_len,
        })
    }

    /// Matches the client to a server running a non-default
    /// `max_frame_len`. Call right after connecting (it resets the
    /// response decoder, discarding any buffered bytes).
    pub fn with_max_frame_len(mut self, max_frame_len: usize) -> Self {
        self.max_frame_len = max_frame_len;
        self.decoder = FrameDecoder::new(max_frame_len + RESPONSE_HEADROOM);
        self
    }

    /// A second handle on the same connection with its own (empty) decoder
    /// and id counter — the pattern for full-duplex use: one handle sends,
    /// the clone receives, concurrently from two threads. Two handles that
    /// both *read* would split frames between their decoders, and two that
    /// both *send* would duplicate ids; give each clone one direction.
    pub fn try_clone(&self) -> std::io::Result<WireClient> {
        Ok(WireClient {
            stream: self.stream.try_clone()?,
            decoder: FrameDecoder::new(self.max_frame_len + RESPONSE_HEADROOM),
            scratch: vec![0u8; 64 * 1024],
            encode_buf: Vec::new(),
            next_id: 0,
            max_frame_len: self.max_frame_len,
        })
    }

    /// Connects to `addr`, retrying until `timeout` elapses — for drivers
    /// racing a server that is still binding its listener (the CI smoke
    /// starts `serve_demo --listen` and `serve_client` concurrently).
    pub fn connect_retry(addr: SocketAddr, timeout: Duration) -> std::io::Result<WireClient> {
        let deadline = Instant::now() + timeout;
        loop {
            match WireClient::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// Sends one request frame; returns the id the response will echo.
    /// Does not wait for the response — requests pipeline freely. The
    /// frame is encoded straight from the borrowed request into a reused
    /// buffer (no intermediate feature copy).
    pub fn send(&mut self, request: &InferRequest) -> Result<u64, WireError> {
        let id = self.next_id;
        self.next_id += 1;
        self.encode_buf.clear();
        encode_request_into(&mut self.encode_buf, id, request);
        self.stream.write_all(&self.encode_buf)?;
        Ok(id)
    }

    /// Sends an explicit pre-built frame (tests use this to craft hostile
    /// input; [`WireClient::send`] is the normal path).
    pub fn send_frame(&mut self, frame: &RequestFrame) -> Result<(), WireError> {
        self.stream.write_all(&frame.to_bytes())?;
        Ok(())
    }

    /// Sends raw bytes verbatim (protocol-violation tests).
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        self.stream.write_all(bytes)?;
        Ok(())
    }

    /// Performs the hello exchange: sends a `HELO` frame (carrying `token`
    /// when the server requires authentication) and blocks for the server's
    /// shard-map reply. A standalone server answers with a single-node map.
    /// An error frame instead — e.g. `Unauthorized` for a bad token —
    /// surfaces as [`WireError::Rejected`].
    ///
    /// Call before pipelining requests (the reply is the next frame read).
    pub fn hello(&mut self, token: Option<&str>) -> Result<ShardMap, WireError> {
        self.encode_buf.clear();
        encode_hello_into(&mut self.encode_buf, token);
        self.stream.write_all(&self.encode_buf)?;
        loop {
            match self.decoder.next_frame()? {
                Some(Frame::ShardMap(frame)) => return Ok(frame.map),
                Some(Frame::Response(response)) => {
                    return Err(WireError::Rejected {
                        status: response.status,
                        message: response.message,
                    })
                }
                Some(Frame::Request(_) | Frame::Hello(_)) => {
                    return Err(WireError::Malformed("unexpected frame kind in hello reply"))
                }
                None => {}
            }
            let n = self.stream.read(&mut self.scratch)?;
            if n == 0 {
                return Err(WireError::Truncated);
            }
            self.decoder.feed(&self.scratch[..n]);
        }
    }

    /// Blocks for the next response frame, in completion order.
    pub fn recv(&mut self) -> Result<ResponseFrame, WireError> {
        loop {
            match self.decoder.next_frame()? {
                Some(Frame::Response(response)) => return Ok(response),
                Some(Frame::Request(_)) => {
                    return Err(WireError::Malformed("server sent a request frame"))
                }
                Some(Frame::Hello(_)) => {
                    return Err(WireError::Malformed("server sent a hello frame"))
                }
                Some(Frame::ShardMap(_)) => {
                    return Err(WireError::Malformed("unsolicited shard-map frame"))
                }
                None => {}
            }
            let n = self.stream.read(&mut self.scratch)?;
            if n == 0 {
                return Err(WireError::Truncated);
            }
            self.decoder.feed(&self.scratch[..n]);
        }
    }

    /// Sends one request and blocks for its served response; an error
    /// frame (any non-`Ok` status) surfaces as [`WireError::Rejected`].
    ///
    /// Only sound on a connection with no other pipelined requests
    /// outstanding (the next arriving response is assumed to be this one).
    pub fn infer(&mut self, request: &InferRequest) -> Result<ResponseBody, WireError> {
        let id = self.send(request)?;
        let response = self.recv()?;
        debug_assert!(
            response.status != WireStatus::Ok || response.id == id,
            "no pipelining inside infer()"
        );
        response.into_body()
    }

    /// Half-closes the write side, telling the server no more requests are
    /// coming; pending responses can still be read.
    pub fn finish_sending(&mut self) -> std::io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }
}

/// How many `NotMine` redirects one [`ClusterClient::infer`] follows
/// before giving up (a stale map converges in one hop; more hops means the
/// cluster is reconfiguring under us and the caller should retry).
pub const DEFAULT_MAX_REDIRECTS: usize = 3;

/// A shard-aware client for a cluster of [`crate::net::WireServer`]s.
///
/// Connect with one or more **seed** addresses; the first node that
/// answers the hello exchange supplies the [`ShardMap`]. Every
/// [`ClusterClient::infer`] hashes the request's [`crate::ModelKey`] onto
/// the ring and dials the shard's replica group primary-first, so a
/// client and a server sharing a map version agree on ownership and the
/// common case is zero redirects. Connections are pooled per node and
/// re-opened (with a fresh hello, which also refreshes the map) on demand.
///
/// Failure handling mirrors the server's guarantees:
///
/// * `NotMine` → follow the redirect's `owners=` list, bounded by
///   [`DEFAULT_MAX_REDIRECTS`] per request.
/// * An I/O error or truncation mid-request → the node is presumed dead:
///   drop its pooled connection and resend to the next replica (inference
///   is deterministic, so the resend is idempotent).
#[derive(Debug)]
pub struct ClusterClient {
    map: ShardMap,
    ring: HashRing,
    token: Option<String>,
    conns: HashMap<String, WireClient>,
    max_frame_len: usize,
    max_redirects: usize,
    redirects_followed: u64,
    failovers: u64,
}

impl ClusterClient {
    /// Connects without authentication at the default `max_frame_len`,
    /// trying each seed in order until one completes the hello exchange.
    pub fn connect(seeds: &[SocketAddr]) -> Result<ClusterClient, WireError> {
        let max_frame_len = crate::config::ServeConfig::default().max_frame_len;
        ClusterClient::connect_with(seeds, None, max_frame_len)
    }

    /// [`ClusterClient::connect`] with an auth token and a frame bound
    /// matching a non-default server configuration.
    pub fn connect_with(
        seeds: &[SocketAddr],
        token: Option<&str>,
        max_frame_len: usize,
    ) -> Result<ClusterClient, WireError> {
        let mut last: Option<WireError> = None;
        for seed in seeds {
            let mut client = match WireClient::connect(*seed) {
                Ok(client) => client.with_max_frame_len(max_frame_len),
                Err(e) => {
                    last = Some(WireError::Io(e));
                    continue;
                }
            };
            match client.hello(token) {
                Ok(map) => {
                    let ring = map.ring();
                    let mut conns = HashMap::new();
                    conns.insert(seed.to_string(), client);
                    return Ok(ClusterClient {
                        map,
                        ring,
                        token: token.map(str::to_string),
                        conns,
                        max_frame_len,
                        max_redirects: DEFAULT_MAX_REDIRECTS,
                        redirects_followed: 0,
                        failovers: 0,
                    });
                }
                // An auth rejection will repeat at every seed: fail fast.
                Err(WireError::Rejected { status, message }) => {
                    return Err(WireError::Rejected { status, message })
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or(WireError::Malformed("no seed addresses given")))
    }

    /// Overrides the per-request redirect bound.
    pub fn with_max_redirects(mut self, max_redirects: usize) -> Self {
        self.max_redirects = max_redirects;
        self
    }

    /// The shard map the client is currently routing by.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Total `NotMine` redirects followed over the client's lifetime.
    pub fn redirects_followed(&self) -> u64 {
        self.redirects_followed
    }

    /// Total mid-request node failures survived by resending to another
    /// replica.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Adopts `map` if it is newer than the one we route by (every
    /// liveness transition bumps the version, so max-version wins).
    fn adopt_map(&mut self, map: ShardMap) {
        if map.version > self.map.version {
            self.ring = map.ring();
            self.map = map;
        }
    }

    /// The dial-order for `hash`: the replica group's addresses, primary
    /// first, under the current map.
    fn owner_addrs(&self, hash: u64) -> VecDeque<String> {
        self.ring
            .replicas(hash, self.map.replication as usize)
            .iter()
            .filter_map(|id| self.map.addr_of(*id).map(str::to_string))
            .collect()
    }

    /// One attempt against one node, opening (and hello-ing) a pooled
    /// connection if none exists.
    fn infer_on(&mut self, addr: &str, request: &InferRequest) -> Result<ResponseBody, WireError> {
        if !self.conns.contains_key(addr) {
            let sockaddr: SocketAddr =
                addr.parse().map_err(|_| WireError::Malformed("unparseable node address"))?;
            let mut client = WireClient::connect(sockaddr)
                .map_err(WireError::Io)?
                .with_max_frame_len(self.max_frame_len);
            let map = client.hello(self.token.as_deref())?;
            self.adopt_map(map);
            self.conns.insert(addr.to_string(), client);
        }
        self.conns.get_mut(addr).expect("connection just ensured").infer(request)
    }

    /// Re-runs the hello exchange against the first node that answers —
    /// pooled connections first, then every alive address in the current
    /// map — adopting any newer shard map it learns. `true` if some node
    /// answered.
    fn refresh_map(&mut self) -> bool {
        let token = self.token.clone();
        let pooled: Vec<String> = self.conns.keys().cloned().collect();
        for addr in pooled {
            let result = match self.conns.get_mut(&addr) {
                Some(conn) => conn.hello(token.as_deref()),
                None => continue,
            };
            match result {
                Ok(map) => {
                    self.adopt_map(map);
                    return true;
                }
                Err(_) => {
                    self.conns.remove(&addr);
                }
            }
        }
        let candidates: Vec<String> =
            self.map.nodes.iter().filter(|node| node.alive).map(|node| node.addr.clone()).collect();
        for addr in candidates {
            let Ok(sockaddr) = addr.parse::<SocketAddr>() else { continue };
            let Ok(client) = WireClient::connect(sockaddr) else { continue };
            let mut client = client.with_max_frame_len(self.max_frame_len);
            if let Ok(map) = client.hello(token.as_deref()) {
                self.adopt_map(map);
                self.conns.insert(addr, client);
                return true;
            }
        }
        false
    }

    /// Routes one request to its shard's replica group and blocks for the
    /// response, following redirects and failing over across replicas.
    /// If the entire group fails (every replica dead, or the redirect
    /// chain exceeded its bound — both symptoms of a stale map), the map
    /// is refreshed with a fresh hello exchange and the request retried
    /// once under the new routing.
    pub fn infer(&mut self, request: &InferRequest) -> Result<ResponseBody, WireError> {
        match self.infer_routed(request) {
            Err(
                first @ (WireError::Io(_)
                | WireError::Truncated
                | WireError::Rejected { status: WireStatus::NotMine, .. }),
            ) => {
                if self.refresh_map() {
                    self.infer_routed(request)
                } else {
                    Err(first)
                }
            }
            other => other,
        }
    }

    /// One routed attempt under the current map (see [`ClusterClient::infer`]).
    fn infer_routed(&mut self, request: &InferRequest) -> Result<ResponseBody, WireError> {
        let hash = shard_hash(&request.key());
        let mut queue = self.owner_addrs(hash);
        let mut redirects = 0usize;
        let mut last: Option<WireError> = None;
        while let Some(addr) = queue.pop_front() {
            match self.infer_on(&addr, request) {
                Ok(body) => return Ok(body),
                Err(WireError::Rejected { status: WireStatus::NotMine, message }) => {
                    redirects += 1;
                    if redirects > self.max_redirects {
                        return Err(WireError::Rejected { status: WireStatus::NotMine, message });
                    }
                    self.redirects_followed += 1;
                    for owner in parse_redirect_owners(&message).into_iter().rev() {
                        queue.push_front(owner);
                    }
                }
                // The node died under us: drop its connection and resend
                // to the next replica in the dial-order.
                Err(WireError::Io(e)) => {
                    self.conns.remove(&addr);
                    self.failovers += 1;
                    last = Some(WireError::Io(e));
                }
                Err(WireError::Truncated) => {
                    self.conns.remove(&addr);
                    self.failovers += 1;
                    last = Some(WireError::Truncated);
                }
                Err(other) => return Err(other),
            }
        }
        Err(last.unwrap_or(WireError::Malformed("no reachable replica in the shard's owner group")))
    }
}

/// Pulls the address list out of a `NotMine` redirect message
/// (`owners=<addr>[,<addr>...];version=<v>`). Unparseable messages yield
/// an empty list — the request then falls back to the map's own replicas.
fn parse_redirect_owners(message: &str) -> Vec<String> {
    message
        .strip_prefix("owners=")
        .and_then(|rest| rest.split(';').next())
        .map(|list| list.split(',').filter(|s| !s.is_empty()).map(str::to_string).collect())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::parse_redirect_owners;

    #[test]
    fn redirect_owner_lists_parse_and_tolerate_garbage() {
        assert_eq!(
            parse_redirect_owners("owners=127.0.0.1:7401,127.0.0.1:7402;version=3"),
            vec!["127.0.0.1:7401".to_string(), "127.0.0.1:7402".to_string()],
        );
        assert_eq!(
            parse_redirect_owners("owners=127.0.0.1:7401;version=9"),
            vec!["127.0.0.1:7401".to_string()],
        );
        assert!(parse_redirect_owners("owners=;version=1").is_empty());
        assert!(parse_redirect_owners("not a redirect at all").is_empty());
    }
}
